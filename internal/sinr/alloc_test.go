package sinr

import (
	"math/rand"
	"testing"

	"dynsched/internal/netgraph"
	"dynsched/internal/testenv"
)

func allocTestFixedPower(t *testing.T, kind WeightKind) *FixedPower {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	g := netgraph.RandomPairs(rng, 64, 100, 1, 4)
	prm := DefaultParams()
	pk := PowerLinear
	if kind == WeightMonotone {
		pk = PowerUniform
	}
	powers, err := Powers(g, prm, pk, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFixedPower(g, prm, powers, kind)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFixedPowerResolverZeroAllocs pins the fixed-power resolver's
// zero-steady-state-allocation guarantee for both weight kinds: after
// one warm-up slot, resolution performs no heap allocations (and, by
// construction, no math.Pow calls — every interference term is a gain
// table read).
func TestFixedPowerResolverZeroAllocs(t *testing.T) {
	testenv.SkipIfRace(t)
	for _, kind := range []WeightKind{WeightAffectance, WeightMonotone} {
		m := allocTestFixedPower(t, kind)
		tx := []int{0, 4, 8, 12, 16, 20, 24, 28, 32, 36, 40, 44, 48, 52, 56, 60}
		resolve := m.NewResolver()
		resolve(tx) // warm the reusable buffers
		if got := testing.AllocsPerRun(200, func() { resolve(tx) }); got != 0 {
			t.Errorf("%s resolver: %v allocs per slot, want 0", m.Name(), got)
		}
	}
}

// TestFixedPowerSuccessesSingleAlloc pins that the Successes slow path
// allocates only its result slice (the ok map it used to build per call
// is gone; counting scratch is pooled).
func TestFixedPowerSuccessesSingleAlloc(t *testing.T) {
	testenv.SkipIfRace(t)
	m := allocTestFixedPower(t, WeightAffectance)
	tx := []int{0, 4, 8, 12, 16, 20}
	m.Successes(tx) // warm the pool
	if got := testing.AllocsPerRun(200, func() { m.Successes(tx) }); got > 1 {
		t.Errorf("Successes: %v allocs per call, want ≤ 1 (the result slice)", got)
	}
}

// TestPowerControlResolverZeroAllocs pins the power-control resolver:
// feasibility solving (gain system build, fixed-point iteration,
// shedding) runs entirely on recycled scratch.
func TestPowerControlResolverZeroAllocs(t *testing.T) {
	testenv.SkipIfRace(t)
	rng := rand.New(rand.NewSource(3))
	g := netgraph.RandomPairs(rng, 32, 200, 1, 3)
	m, err := NewPowerControl(g, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	tx := []int{0, 4, 8, 12, 16, 20, 24, 28}
	resolve := m.NewResolver()
	resolve(tx) // warm the reusable buffers
	if got := testing.AllocsPerRun(200, func() { resolve(tx) }); got != 0 {
		t.Errorf("power-control resolver: %v allocs per slot, want 0", got)
	}
}
