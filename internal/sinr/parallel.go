package sinr

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Intra-slot parallelism thresholds. Slots (or solver systems) below
// these sizes resolve serially: the fan-out fixed cost only pays for
// itself on large working sets. Declared as variables so tests can
// lower them to exercise the parallel paths on small inputs.
var (
	// parallelMinTx is the minimum slot size (len(tx)) before a
	// resolver shards the per-link loop across workers.
	parallelMinTx = 256
	// parallelMinRows is the minimum system size k before the
	// power-control solver fans out its gain-row build and shed sums.
	parallelMinRows = 128
	// parallelMinIterRows is the minimum k before each fixed-point
	// iteration pass fans out (the per-iteration barrier costs more
	// than the one-shot phases, so the threshold is higher).
	parallelMinIterRows = 512
)

// maxPoolWorkers bounds the process-wide worker pool. Workers are
// spawned lazily and parked forever, so this is a ceiling on goroutines
// ever created, not a steady cost.
const maxPoolWorkers = 256

// chunkRunner is the work body of a parallel fan-out: runChunks claims
// contiguous index ranges from the active job until none remain. slot
// identifies the participating goroutine (0 = the dispatcher) so
// implementations can use per-worker scratch without allocation.
type chunkRunner interface {
	runChunks(slot int)
}

// parJob is one fan-out over [0, n): a chunked atomic work cursor plus
// the completion group. It is embedded in long-lived resolver scratch
// and reused across slots, so dispatching allocates nothing.
type parJob struct {
	wg     sync.WaitGroup
	next   atomic.Int64 // claim cursor, advanced in grain-sized steps
	slot   atomic.Int64 // worker-slot allocator (dispatcher holds 0)
	n      int
	grain  int
	runner chunkRunner
}

// claim takes the next contiguous chunk, returning lo = -1 when the
// range is exhausted. Chunk boundaries never affect results — each
// index is processed exactly once, by exactly one claimant, with the
// serial per-index operation sequence — so chunking (and therefore
// timing) is invisible in the output.
func (j *parJob) claim() (lo, hi int) {
	lo = int(j.next.Add(int64(j.grain))) - j.grain
	if lo >= j.n {
		return -1, -1
	}
	hi = lo + j.grain
	if hi > j.n {
		hi = j.n
	}
	return lo, hi
}

// The process-wide parked worker pool. Workers are plain goroutines
// blocked on an unbuffered channel receive; waking one is a single
// channel send with no allocation. The pool is global (not per model)
// so a process running many models/replications shares one bounded set
// of goroutines.
var (
	poolCh   = make(chan *parJob)
	poolSize atomic.Int64
)

// poolWorker parks on poolCh forever, running each delivered job to
// exhaustion. It is a zero-argument top-level function so spawning it
// captures nothing.
func poolWorker() {
	for j := range poolCh {
		slot := int(j.slot.Add(1))
		j.runner.runChunks(slot)
		j.wg.Done()
	}
}

// trySpawnPoolWorker grows the pool by one worker unless the ceiling is
// reached.
func trySpawnPoolWorker() {
	for {
		sz := poolSize.Load()
		if sz >= maxPoolWorkers {
			return
		}
		if poolSize.CompareAndSwap(sz, sz+1) {
			go poolWorker()
			return
		}
	}
}

// runParallel fans runner.runChunks over [0, n) across up to workers
// goroutines: the caller always participates (slot 0), and up to
// workers-1 pool workers are recruited. Recruitment prefers an already
// parked worker (non-blocking send), spawns a new one below the pool
// ceiling otherwise, and falls back to a blocking hand-off when the
// pool is saturated — every recruited helper is guaranteed to run, and
// with zero helpers the caller simply completes the job alone, so the
// call never deadlocks and performs no allocations in steady state.
// runParallel returns only after every chunk has been processed.
func runParallel(j *parJob, runner chunkRunner, n, workers int) {
	j.runner = runner
	j.n = n
	j.grain = grainFor(n, workers)
	j.next.Store(0)
	j.slot.Store(0)
	helpers := workers - 1
	// Never recruit more helpers than there are chunks beyond the
	// dispatcher's first.
	if maxHelpers := (n+j.grain-1)/j.grain - 1; helpers > maxHelpers {
		helpers = maxHelpers
	}
	for h := 0; h < helpers; h++ {
		j.wg.Add(1)
		select {
		case poolCh <- j:
		default:
			trySpawnPoolWorker()
			poolCh <- j
		}
	}
	runner.runChunks(0)
	j.wg.Wait()
	j.runner = nil
}

// grainFor picks the claim-chunk size: about four claims per worker to
// smooth imbalance, but never below 64 indices so the atomic cursor
// stays cold relative to the per-index work.
func grainFor(n, workers int) int {
	g := n / (workers * 4)
	if g < 64 {
		g = 64
	}
	return g
}

// effectiveWorkers resolves a requested parallelism (0 = automatic)
// to a concrete worker count.
func effectiveWorkers(requested int) int {
	if requested <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return requested
}
