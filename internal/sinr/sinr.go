// Package sinr implements the physical interference model of Section 6:
// nodes live in the plane, a transmission at power p is received at
// distance d with strength p/d^α, and a transmission succeeds when its
// signal-to-interference-plus-noise ratio exceeds the threshold β.
//
// The package provides power assignments (uniform, linear, square-root,
// arbitrary), the affectance quantity a_p(ℓ, ℓ') that measures the
// relative interference of one link on another, and the weight-matrix
// constructions of Sections 6.1 (fixed powers) and 6.2 (power control).
package sinr

import (
	"fmt"
	"math"

	"dynsched/internal/geom"
	"dynsched/internal/netgraph"
)

// Params are the physical constants of the SINR model.
type Params struct {
	// Alpha is the path-loss exponent (typically 2–6).
	Alpha float64
	// Beta is the SINR threshold required for successful reception.
	Beta float64
	// Noise is the ambient noise ν.
	Noise float64
}

// DefaultParams returns the parameters used throughout the experiments:
// α = 3, β = 1.5, and negligible (but non-zero) noise.
func DefaultParams() Params {
	return Params{Alpha: 3, Beta: 1.5, Noise: 1e-9}
}

// Validate checks the parameters are physically meaningful.
func (p Params) Validate() error {
	if p.Alpha <= 0 {
		return fmt.Errorf("sinr: alpha %v must be positive", p.Alpha)
	}
	if p.Beta <= 0 {
		return fmt.Errorf("sinr: beta %v must be positive", p.Beta)
	}
	if p.Noise < 0 {
		return fmt.Errorf("sinr: noise %v must be non-negative", p.Noise)
	}
	return nil
}

// PowerKind names the built-in power assignment families.
type PowerKind int

// Power assignment families. Linear assignments make the received signal
// strength identical across links; square-root assignments sit between
// uniform and linear and are the oblivious choice of [20, 25].
const (
	PowerUniform PowerKind = iota + 1
	PowerLinear
	PowerSquareRoot
)

// String returns the family name.
func (k PowerKind) String() string {
	switch k {
	case PowerUniform:
		return "uniform"
	case PowerLinear:
		return "linear"
	case PowerSquareRoot:
		return "square-root"
	default:
		return fmt.Sprintf("PowerKind(%d)", int(k))
	}
}

// Powers computes the per-link transmission powers for a built-in family
// on graph g: uniform assigns base to every link; linear assigns
// base·d(ℓ)^α; square-root assigns base·d(ℓ)^(α/2).
func Powers(g *netgraph.Graph, prm Params, kind PowerKind, base float64) ([]float64, error) {
	if base <= 0 {
		return nil, fmt.Errorf("sinr: base power %v must be positive", base)
	}
	out := make([]float64, g.NumLinks())
	for i := range out {
		d := g.LinkDist(netgraph.LinkID(i))
		if d <= 0 {
			return nil, fmt.Errorf("sinr: link %d has non-positive length %v", i, d)
		}
		switch kind {
		case PowerUniform:
			out[i] = base
		case PowerLinear:
			out[i] = base * math.Pow(d, prm.Alpha)
		case PowerSquareRoot:
			out[i] = base * math.Pow(d, prm.Alpha/2)
		default:
			return nil, fmt.Errorf("sinr: unknown power kind %v", kind)
		}
	}
	return out, nil
}

// MaxNoise returns the largest noise level at which every link of g can
// be received in isolation with the given powers, scaled by margin ∈
// (0,1]. Experiments use it to pick a ν that keeps isolated links
// feasible by a comfortable factor.
func MaxNoise(g *netgraph.Graph, prm Params, powers []float64, margin float64) float64 {
	minSig := math.Inf(1)
	for i, p := range powers {
		d := g.LinkDist(netgraph.LinkID(i))
		sig := p / math.Pow(d, prm.Alpha)
		if sig < minSig {
			minSig = sig
		}
	}
	if math.IsInf(minSig, 1) {
		return 0
	}
	return margin * minSig / prm.Beta
}

// Affectance returns a_p(l, l2): the relative interference a transmission
// on l causes to one on l2, per the fixed-power definition of Section 6.1:
//
//	a_p(ℓ, ℓ') = min{ 1, β · (p(ℓ)/d(s, r')^α) / (p(ℓ')/d(s', r')^α − βν) }
//
// where ℓ = (s, r) and ℓ' = (s', r'). If the margin in the denominator is
// non-positive (ℓ' cannot even overcome noise) the affectance is 1.
func Affectance(g *netgraph.Graph, prm Params, powers []float64, l, l2 netgraph.LinkID) float64 {
	crossDist := g.SenderReceiverDist(l, l2) // d(s, r')
	if crossDist == 0 {
		return 1
	}
	interf := powers[l] / math.Pow(crossDist, prm.Alpha)
	signal := powers[l2] / math.Pow(g.LinkDist(l2), prm.Alpha)
	margin := signal - prm.Beta*prm.Noise
	if margin <= 0 {
		return 1
	}
	return math.Min(1, prm.Beta*interf/margin)
}

// IsFadingMetric reports whether the graph's node metric is a fading
// metric for the given parameters: the path-loss exponent α strictly
// exceeds the (estimated) doubling dimension. Corollary 14's
// competitive ratio improves from O(log²m) to O(log m) in this regime.
// The estimate is an upper bound on the true dimension, so a true
// result is reliable while a false result may be conservative.
func IsFadingMetric(g *netgraph.Graph, prm Params) bool {
	n := g.NumNodes()
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = g.NodeDist(netgraph.NodeID(i), netgraph.NodeID(j))
			}
		}
	}
	return prm.Alpha > geom.DoublingDimension(dist)
}

// MonotoneSubLinear reports whether the power assignment is monotone and
// (sub-)linear in the sense of Section 6.1: for links with d(ℓ) ≤ d(ℓ'),
// p(ℓ) ≤ p(ℓ') and p(ℓ)/d(ℓ)^α ≥ p(ℓ')/d(ℓ')^α. Uniform, square-root,
// and linear assignments all qualify.
func MonotoneSubLinear(g *netgraph.Graph, prm Params, powers []float64) bool {
	type lp struct{ d, p float64 }
	links := make([]lp, g.NumLinks())
	for i := range links {
		links[i] = lp{d: g.LinkDist(netgraph.LinkID(i)), p: powers[i]}
	}
	const tol = 1e-9
	for i := range links {
		for j := range links {
			if links[i].d > links[j].d {
				continue
			}
			if links[i].p > links[j].p*(1+tol) {
				return false
			}
			si := links[i].p / math.Pow(links[i].d, prm.Alpha)
			sj := links[j].p / math.Pow(links[j].d, prm.Alpha)
			if si < sj*(1-tol) {
				return false
			}
		}
	}
	return true
}
