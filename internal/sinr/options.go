package sinr

import (
	"fmt"
	"math"
)

// Backing selects how a model stores its cross-link tables and resolves
// slot interference.
type Backing int

const (
	// BackAuto picks per size: dense tables up to the dense cap, CSR
	// above it — the historical behavior.
	BackAuto Backing = iota
	// BackDense forces the flat row-major table (O(n²) memory).
	BackDense
	// BackCSR forces the compressed-sparse-row table.
	BackCSR
	// BackIndexed skips cross tables entirely and resolves slots through
	// a spatial grid index: exact summation over near interferers plus a
	// rigorous far-field aggregation bound for the remainder. With
	// FarFloor = 0 the resolver sums every interferer exactly, in the
	// same order as the table paths — bit-identical results with O(n)
	// memory instead of O(n²).
	BackIndexed
)

// String names the backing the way run diagnostics report it.
func (b Backing) String() string {
	switch b {
	case BackDense:
		return "dense"
	case BackCSR:
		return "csr"
	case BackIndexed:
		return "indexed"
	default:
		return "auto"
	}
}

// ParseBacking resolves a diagnostic/spec name into a Backing.
func ParseBacking(s string) (Backing, error) {
	switch s {
	case "", "auto":
		return BackAuto, nil
	case "dense":
		return BackDense, nil
	case "csr":
		return BackCSR, nil
	case "indexed":
		return BackIndexed, nil
	default:
		return 0, fmt.Errorf("sinr: unknown table backing %q (want auto, dense, csr, or indexed)", s)
	}
}

// Options tune a model's storage and resolution strategy without
// changing its physical semantics beyond the documented ε envelope.
// The zero value reproduces the historical behavior exactly.
type Options struct {
	// Backing selects the cross-table storage / resolution strategy.
	Backing Backing
	// DenseMaxLinks overrides the dense-vs-CSR switchover link count for
	// BackAuto (0 keeps the built-in crossDenseMaxLinks cap).
	DenseMaxLinks int
	// FarFloor is the contribution floor ε of the indexed backing: an
	// interferer whose individual affectance on the tested link is below
	// ε is never summed term by term; it is covered by a per-cell
	// aggregate or the far-field remainder bound instead. The resolver
	// stays sound — the bounded interference estimate Î always satisfies
	// Î ≥ I_true, so every reported success is a true SINR success; only
	// links whose SINR margin is within β·tail of the threshold can flip
	// from success to failure. ε = 0 disables approximation entirely:
	// the indexed resolver then sums all interferers in the table paths'
	// order and is bit-identical to them.
	FarFloor float64
	// CellSize overrides the spatial grid's cell side length (0 sizes
	// cells automatically to ≈1 point per cell).
	CellSize float64
	// Parallelism is the intra-slot worker count of the model's default
	// resolvers: 0 picks GOMAXPROCS, 1 forces strictly serial
	// resolution, n uses n workers. Results are bit-identical at every
	// setting — the knob trades wall-clock only — so it is an execution
	// option, not part of a scenario's physical identity.
	Parallelism int
}

// validate rejects option values with no defined semantics.
func (o Options) validate() error {
	if o.DenseMaxLinks < 0 {
		return fmt.Errorf("sinr: negative DenseMaxLinks %d", o.DenseMaxLinks)
	}
	if math.IsNaN(o.FarFloor) || math.IsInf(o.FarFloor, 0) || o.FarFloor < 0 || o.FarFloor >= 1 {
		return fmt.Errorf("sinr: FarFloor %v outside [0, 1)", o.FarFloor)
	}
	if math.IsNaN(o.CellSize) || math.IsInf(o.CellSize, 0) || o.CellSize < 0 {
		return fmt.Errorf("sinr: invalid CellSize %v", o.CellSize)
	}
	if o.FarFloor > 0 && o.Backing != BackIndexed {
		return fmt.Errorf("sinr: FarFloor %v requires the indexed backing", o.FarFloor)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("sinr: negative Parallelism %d", o.Parallelism)
	}
	return nil
}

// denseMax resolves the effective dense-table cap.
func (o Options) denseMax() int {
	if o.DenseMaxLinks > 0 {
		return o.DenseMaxLinks
	}
	return crossDenseMaxLinks
}

// TableInfo reports the construction-time choices a model made — which
// table backing it uses and with which knobs — so runs can surface them
// in diagnostics.
type TableInfo struct {
	// Backing is "dense", "csr", or "indexed".
	Backing string `json:"backing"`
	// DenseMaxLinks is the dense-vs-CSR switchover in effect.
	DenseMaxLinks int `json:"denseMaxLinks"`
	// FarFloor is the indexed backing's contribution floor ε.
	FarFloor float64 `json:"farFloor,omitempty"`
	// CellSize is the explicit spatial cell size (0 = automatic).
	CellSize float64 `json:"cellSize,omitempty"`
}

// tableInfo derives the diagnostic record for a resolved backing.
func (o Options) tableInfo(n int) TableInfo {
	info := TableInfo{DenseMaxLinks: o.denseMax()}
	switch o.Backing {
	case BackIndexed:
		info.Backing = "indexed"
		info.FarFloor = o.FarFloor
		info.CellSize = o.CellSize
	case BackDense:
		info.Backing = "dense"
	case BackCSR:
		info.Backing = "csr"
	default:
		if n <= o.denseMax() {
			info.Backing = "dense"
		} else {
			info.Backing = "csr"
		}
	}
	return info
}
