package sinr

import (
	"math"
	"math/rand"
	"testing"

	"dynsched/internal/geom"
	"dynsched/internal/netgraph"
)

// pairGraph builds n disjoint sender→receiver pairs on a long line:
// pair i has sender at x = i·sep and receiver at x = i·sep + length.
func pairGraph(t *testing.T, n int, sep, length float64) *netgraph.Graph {
	t.Helper()
	g := netgraph.New(2 * n)
	pts := make([]geom.Point, 2*n)
	for i := 0; i < n; i++ {
		pts[2*i] = geom.Point{X: float64(i) * sep}
		pts[2*i+1] = geom.Point{X: float64(i)*sep + length}
	}
	if err := g.SetPositions(pts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		g.MustAddLink(netgraph.NodeID(2*i), netgraph.NodeID(2*i+1))
	}
	return g
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Alpha: 0, Beta: 1, Noise: 0},
		{Alpha: 3, Beta: 0, Noise: 0},
		{Alpha: 3, Beta: 1, Noise: -1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestPowers(t *testing.T) {
	g := pairGraph(t, 3, 100, 2)
	prm := DefaultParams()
	uni, err := Powers(g, prm, PowerUniform, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range uni {
		if p != 5 {
			t.Errorf("uniform power %v, want 5", p)
		}
	}
	lin, err := Powers(g, prm, PowerLinear, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Pow(2, prm.Alpha)
	for _, p := range lin {
		if math.Abs(p-want) > 1e-9 {
			t.Errorf("linear power %v, want %v", p, want)
		}
	}
	sqrt, err := Powers(g, prm, PowerSquareRoot, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantSqrt := math.Pow(2, prm.Alpha/2)
	for _, p := range sqrt {
		if math.Abs(p-wantSqrt) > 1e-9 {
			t.Errorf("sqrt power %v, want %v", p, wantSqrt)
		}
	}
	if _, err := Powers(g, prm, PowerUniform, 0); err == nil {
		t.Error("zero base power accepted")
	}
	if _, err := Powers(g, prm, PowerKind(99), 1); err == nil {
		t.Error("unknown power kind accepted")
	}
}

func TestMonotoneSubLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := netgraph.RandomPairs(rng, 12, 50, 1, 6)
	prm := DefaultParams()
	for _, kind := range []PowerKind{PowerUniform, PowerLinear, PowerSquareRoot} {
		p, err := Powers(g, prm, kind, 1)
		if err != nil {
			t.Fatal(err)
		}
		if !MonotoneSubLinear(g, prm, p) {
			t.Errorf("%v assignment not recognized as monotone sub-linear", kind)
		}
	}
	// A deliberately anti-monotone assignment must be rejected: give the
	// longest link the least power.
	powers := make([]float64, g.NumLinks())
	for i := range powers {
		powers[i] = 1 / math.Pow(g.LinkDist(netgraph.LinkID(i)), prm.Alpha)
	}
	// p(ℓ) decreasing in length violates monotonicity (p(ℓ) ≤ p(ℓ')).
	if MonotoneSubLinear(g, prm, powers) {
		t.Error("anti-monotone assignment accepted")
	}
}

func TestAffectanceBasics(t *testing.T) {
	// Two parallel unit links far apart: negligible mutual affectance.
	g := pairGraph(t, 2, 1000, 1)
	prm := Params{Alpha: 3, Beta: 1, Noise: 0}
	p, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	a := Affectance(g, prm, p, 0, 1)
	if a > 1e-6 {
		t.Errorf("distant affectance %v, want ≈0", a)
	}
	// Self-affectance is capped at 1.
	if self := Affectance(g, prm, p, 0, 0); self != 1 {
		t.Errorf("self affectance %v, want 1", self)
	}
	// Close links: pair 1's sender sits 0.2 away from pair 0's receiver,
	// so its affectance on link 0 is huge (capped at 1).
	g2 := pairGraph(t, 2, 1.2, 1)
	p2, err := Powers(g2, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	a2 := Affectance(g2, prm, p2, 1, 0)
	if a2 < 0.5 {
		t.Errorf("close affectance %v, want large", a2)
	}
}

func TestAffectanceMonotoneInDistance(t *testing.T) {
	prm := DefaultParams()
	prev := math.Inf(1)
	for _, sep := range []float64{3, 5, 10, 30, 100} {
		g := pairGraph(t, 2, sep, 1)
		p, err := Powers(g, prm, PowerUniform, 1)
		if err != nil {
			t.Fatal(err)
		}
		a := Affectance(g, prm, p, 0, 1)
		if a > prev+1e-12 {
			t.Fatalf("affectance not monotone: %v at sep %v (prev %v)", a, sep, prev)
		}
		prev = a
	}
}

func TestMaxNoise(t *testing.T) {
	g := pairGraph(t, 2, 100, 2)
	prm := Params{Alpha: 3, Beta: 2, Noise: 0}
	p, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	nu := MaxNoise(g, prm, p, 1)
	// At exactly the max noise, a lone transmission is borderline feasible.
	prm.Noise = nu * 0.99
	m, err := NewFixedPower(g, prm, p, WeightAffectance)
	if err != nil {
		t.Fatal(err)
	}
	if s := m.Successes([]int{0}); !s[0] {
		t.Error("lone transmission infeasible below MaxNoise")
	}
	prm.Noise = nu * 1.01
	m2, err := NewFixedPower(g, prm, p, WeightAffectance)
	if err != nil {
		t.Fatal(err)
	}
	if s := m2.Successes([]int{0}); s[0] {
		t.Error("lone transmission feasible above MaxNoise")
	}
}

// TestFixedPowerOnGeneralMetric builds the SINR model over an explicit
// (non-Euclidean) metric, the general-metrics setting of Section 6.2.
func TestFixedPowerOnGeneralMetric(t *testing.T) {
	const n = 6
	g := netgraph.New(n)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
	}
	set := func(i, j int, d float64) { dist[i][j], dist[j][i] = d, d }
	set(0, 1, 1)
	set(2, 3, 1)
	set(4, 5, 1)
	for _, p := range [][2]int{{0, 2}, {0, 3}, {0, 4}, {0, 5}, {1, 2}, {1, 3}, {1, 4}, {1, 5}, {2, 4}, {2, 5}, {3, 4}, {3, 5}} {
		set(p[0], p[1], 40)
	}
	if err := g.SetMetric(dist); err != nil {
		t.Fatal(err)
	}
	g.MustAddLink(0, 1)
	g.MustAddLink(2, 3)
	g.MustAddLink(4, 5)

	prm := DefaultParams()
	powers, err := Powers(g, prm, PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewFixedPower(g, prm, powers, WeightMonotone)
	if err != nil {
		t.Fatal(err)
	}
	// Links are metric-far apart: all three transmit at once.
	s := m.Successes([]int{0, 1, 2})
	for i, ok := range s {
		if !ok {
			t.Errorf("metric-far link %d failed", i)
		}
	}
	// Power control works over the metric too.
	pc, err := NewPowerControl(g, prm)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := pc.SolvePowers([]int{0, 1, 2}); !ok {
		t.Error("power control infeasible on metric-far links")
	}
}

func TestIsFadingMetric(t *testing.T) {
	prm := DefaultParams() // α = 3
	// A sparse line is ~1-dimensional: fading.
	line := netgraph.LineNetwork(10, 5)
	if !IsFadingMetric(line, prm) {
		t.Error("line metric not recognized as fading")
	}
	// A uniform star metric has doubling dimension ~log n > 3: general.
	const n = 24
	g := netgraph.New(n)
	dist := make([][]float64, n)
	for i := range dist {
		dist[i] = make([]float64, n)
		for j := range dist[i] {
			if i != j {
				dist[i][j] = 2
			}
		}
	}
	if err := g.SetMetric(dist); err != nil {
		t.Fatal(err)
	}
	if IsFadingMetric(g, prm) {
		t.Error("uniform star metric judged fading at α=3")
	}
}
