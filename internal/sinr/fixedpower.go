package sinr

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// WeightKind selects which Section 6.1 weight matrix a fixed-power model
// uses for its analysis side.
type WeightKind int

// Weight matrix constructions from Section 6.1.
const (
	// WeightAffectance sets W[ℓ][ℓ'] = a_p(ℓ', ℓ): the interference ℓ'
	// causes at ℓ. This is the construction for linear power assignments.
	WeightAffectance WeightKind = iota + 1
	// WeightMonotone sets W[ℓ][ℓ'] = max{a_p(ℓ,ℓ'), a_p(ℓ',ℓ)} when
	// d(ℓ) ≤ d(ℓ') and 0 otherwise: the construction for monotone
	// (sub-)linear assignments such as uniform powers.
	WeightMonotone
)

// FixedPower is the SINR model with a fixed transmission power per link
// (Section 6.1). Its Successes method applies the exact physical SINR
// test; its Weight method exposes the chosen analysis matrix.
type FixedPower struct {
	g      *netgraph.Graph
	prm    Params
	powers []float64
	kind   WeightKind

	// Cached per-link quantities.
	lens    []float64 // link lengths
	signals []float64 // received signal strength p(ℓ)/d(ℓ)^α
	// gain.at(e, e2) = p(e2)/d(s', r)^α — the interference power a
	// transmission on e2 lands at e's receiver. Precomputed once so the
	// per-slot SINR test is a flat table sum with no math.Pow calls;
	// d(s', r) = 0 stores +Inf, exactly the value the division yields.
	gain *crossTable
	w    [][]float64
	rows *interference.Sparse
	name string

	// scratch pools ResolverScratch values for the Successes slow path.
	// The model may be shared across replication goroutines, so the
	// scratch cannot live on the struct directly.
	scratch sync.Pool
}

var (
	_ interference.Model        = (*FixedPower)(nil)
	_ interference.RowsProvider = (*FixedPower)(nil)
	_ interference.SlotResolver = (*FixedPower)(nil)
)

// NewFixedPower builds a fixed-power SINR model. The graph must carry
// node positions and powers must have one positive entry per link.
// Construction precomputes the cross-gain table and both weight
// matrices, fanning the O(n²) work across GOMAXPROCS goroutines; the
// results are bit-identical to the serial per-pair evaluation.
func NewFixedPower(g *netgraph.Graph, prm Params, powers []float64, kind WeightKind) (*FixedPower, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if !g.HasDistances() {
		return nil, fmt.Errorf("sinr: graph has neither positions nor a metric")
	}
	if len(powers) != g.NumLinks() {
		return nil, fmt.Errorf("sinr: %d powers for %d links", len(powers), g.NumLinks())
	}
	if kind != WeightAffectance && kind != WeightMonotone {
		return nil, fmt.Errorf("sinr: unknown weight kind %d", int(kind))
	}
	m := &FixedPower{
		g:      g,
		prm:    prm,
		powers: append([]float64(nil), powers...),
		kind:   kind,
	}
	n := g.NumLinks()
	m.lens = make([]float64, n)
	m.signals = make([]float64, n)
	for i := 0; i < n; i++ {
		p := powers[i]
		if p <= 0 {
			return nil, fmt.Errorf("sinr: link %d has non-positive power %v", i, p)
		}
		m.lens[i] = g.LinkDist(netgraph.LinkID(i))
		m.signals[i] = p / math.Pow(m.lens[i], prm.Alpha)
	}
	m.gain = buildCrossTable(n, func(at, src int) float64 {
		recv := g.Link(netgraph.LinkID(at)).To
		d := g.NodeDist(g.Link(netgraph.LinkID(src)).From, recv)
		// d == 0 divides to +Inf — the sentinel the SINR test expects.
		return m.powers[src] / math.Pow(d, prm.Alpha)
	})
	m.buildWeights()
	m.name = fmt.Sprintf("sinr-fixed(%s)", kindName(kind))
	m.scratch.New = func() any { return interference.NewResolverScratch(n) }
	return m, nil
}

func kindName(k WeightKind) string {
	if k == WeightAffectance {
		return "affectance"
	}
	return "monotone"
}

// affectanceFromGain is Affectance rewritten over a precomputed gain
// entry: gain = p(ℓ)/d(s, r')^α and signal = p(ℓ')/d(ℓ')^α. A +Inf gain
// covers both the d(s, r') = 0 branch of Affectance and an underflowed
// path-loss power — in either case the original formula yields 1.
func affectanceFromGain(gain, signal, betaNoise, beta float64) float64 {
	if math.IsInf(gain, 1) {
		return 1
	}
	margin := signal - betaNoise
	if margin <= 0 {
		return 1
	}
	return math.Min(1, beta*gain/margin)
}

// buildWeights derives the analysis matrix from the gain table — no
// math.Pow calls remain — and extracts its CSR form, both parallelized
// across rows. Entry for entry the result matches the Affectance-based
// construction bit for bit (same operations on the same values).
func (m *FixedPower) buildWeights() {
	n := m.g.NumLinks()
	m.w = make([][]float64, n)
	betaNoise := m.prm.Beta * m.prm.Noise
	interference.ParallelRows(n, func(e int) {
		row := make([]float64, n)
		for e2 := 0; e2 < n; e2++ {
			if e == e2 {
				row[e2] = 1
				continue
			}
			switch m.kind {
			case WeightAffectance:
				row[e2] = affectanceFromGain(m.gain.at(e, e2), m.signals[e], betaNoise, m.prm.Beta)
			case WeightMonotone:
				// Interference is charged to the shorter link only.
				if m.lens[e] <= m.lens[e2] {
					a1 := affectanceFromGain(m.gain.at(e2, e), m.signals[e2], betaNoise, m.prm.Beta)
					a2 := affectanceFromGain(m.gain.at(e, e2), m.signals[e], betaNoise, m.prm.Beta)
					row[e2] = math.Max(a1, a2)
				}
			}
		}
		m.w[e] = row
	})
	m.rows = interference.SparseFromWeightsParallel(n, func(e, e2 int) float64 { return m.w[e][e2] })
}

// WeightRows implements interference.RowsProvider. For monotone
// assignments roughly half the matrix is structurally zero; for
// affectance matrices the CSR form still wins by replacing dynamic
// Weight calls with flat array scans.
func (m *FixedPower) WeightRows() *interference.Sparse { return m.rows }

// Name implements interference.Model.
func (m *FixedPower) Name() string { return m.name }

// NumLinks implements interference.Model.
func (m *FixedPower) NumLinks() int { return m.g.NumLinks() }

// Weight implements interference.Model.
func (m *FixedPower) Weight(e, e2 int) float64 { return m.w[e][e2] }

// Graph returns the underlying communication graph.
func (m *FixedPower) Graph() *netgraph.Graph { return m.g }

// Params returns the physical constants.
func (m *FixedPower) Params() Params { return m.prm }

// Power returns the transmission power of link e.
func (m *FixedPower) Power(e int) float64 { return m.powers[e] }

// LinkLen returns the length of link e.
func (m *FixedPower) LinkLen(e int) float64 { return m.lens[e] }

// Successes implements interference.Model using the exact SINR test: a
// transmission on ℓ succeeds when its link carries a single packet and
//
//	p(ℓ)/d(ℓ)^α ≥ β·(Σ_{ℓ'∈S, ℓ'≠ℓ} p(ℓ')/d(s', r)^α + ν).
//
// The interference sum reads the precomputed gain table; counting
// scratch comes from a pool, so the only allocation is the returned
// slice. Hot loops should use NewResolver, which reuses that too.
func (m *FixedPower) Successes(tx []int) []bool {
	out := make([]bool, len(tx))
	if len(tx) == 0 {
		return out
	}
	s := m.scratch.Get().(*interference.ResolverScratch)
	s.Count(tx)
	m.fillSuccesses(s, tx, out)
	s.End(tx)
	m.scratch.Put(s)
	return out
}

// fillSuccesses resolves one counted slot into out. Distinct links are
// summed in ascending order — the historical Successes order — so the
// floating-point interference sums, and therefore the outcomes, are
// bit-identical across the Successes and NewResolver paths and across
// dense and CSR table backings. A co-located interferer contributes a
// +Inf gain; adding it yields the same +Inf sum the pre-table code
// produced by short-circuiting (all terms are non-negative, so no NaN
// can arise).
func (m *FixedPower) fillSuccesses(s *interference.ResolverScratch, tx []int, out []bool) {
	sort.Ints(s.Uniq)
	for i, e := range tx {
		if s.Counts[e] != 1 {
			continue
		}
		interf := m.prm.Noise
		if row := m.gain.denseRow(e); row != nil {
			for _, e2 := range s.Uniq {
				if e2 != e {
					interf += row[e2]
				}
			}
		} else {
			// CSR backing: merge-join the sorted uniq list with the row's
			// ascending columns; absent entries are exact +0.0 terms, so
			// skipping them leaves the sum bit-identical.
			cols, vals := m.gain.csrRow(e)
			k := 0
			for _, e2 := range s.Uniq {
				if e2 == e {
					continue
				}
				for k < len(cols) && int(cols[k]) < e2 {
					k++
				}
				if k < len(cols) && int(cols[k]) == e2 {
					interf += vals[k]
				}
			}
		}
		out[i] = m.signals[e] >= m.prm.Beta*interf
	}
}

// NewResolver implements interference.SlotResolver with the same exact
// SINR test as Successes but every buffer reused across slots:
// steady-state resolution performs no allocations and no math.Pow
// calls — each interference term is one table read.
func (m *FixedPower) NewResolver() func(tx []int) []bool {
	s := interference.NewResolverScratch(m.g.NumLinks())
	return func(tx []int) []bool {
		out := s.Begin(tx)
		m.fillSuccesses(s, tx, out)
		s.End(tx)
		return out
	}
}
