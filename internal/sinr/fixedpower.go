package sinr

import (
	"fmt"
	"math"
	"sort"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// WeightKind selects which Section 6.1 weight matrix a fixed-power model
// uses for its analysis side.
type WeightKind int

// Weight matrix constructions from Section 6.1.
const (
	// WeightAffectance sets W[ℓ][ℓ'] = a_p(ℓ', ℓ): the interference ℓ'
	// causes at ℓ. This is the construction for linear power assignments.
	WeightAffectance WeightKind = iota + 1
	// WeightMonotone sets W[ℓ][ℓ'] = max{a_p(ℓ,ℓ'), a_p(ℓ',ℓ)} when
	// d(ℓ) ≤ d(ℓ') and 0 otherwise: the construction for monotone
	// (sub-)linear assignments such as uniform powers.
	WeightMonotone
)

// FixedPower is the SINR model with a fixed transmission power per link
// (Section 6.1). Its Successes method applies the exact physical SINR
// test; its Weight method exposes the chosen analysis matrix.
type FixedPower struct {
	g      *netgraph.Graph
	prm    Params
	powers []float64
	kind   WeightKind

	// Cached per-link quantities.
	lens    []float64 // link lengths
	signals []float64 // received signal strength p(ℓ)/d(ℓ)^α
	w       [][]float64
	rows    *interference.Sparse
	name    string
}

var (
	_ interference.Model        = (*FixedPower)(nil)
	_ interference.RowsProvider = (*FixedPower)(nil)
	_ interference.SlotResolver = (*FixedPower)(nil)
)

// NewFixedPower builds a fixed-power SINR model. The graph must carry
// node positions and powers must have one positive entry per link.
func NewFixedPower(g *netgraph.Graph, prm Params, powers []float64, kind WeightKind) (*FixedPower, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if !g.HasDistances() {
		return nil, fmt.Errorf("sinr: graph has neither positions nor a metric")
	}
	if len(powers) != g.NumLinks() {
		return nil, fmt.Errorf("sinr: %d powers for %d links", len(powers), g.NumLinks())
	}
	if kind != WeightAffectance && kind != WeightMonotone {
		return nil, fmt.Errorf("sinr: unknown weight kind %d", int(kind))
	}
	m := &FixedPower{
		g:      g,
		prm:    prm,
		powers: append([]float64(nil), powers...),
		kind:   kind,
	}
	n := g.NumLinks()
	m.lens = make([]float64, n)
	m.signals = make([]float64, n)
	for i := 0; i < n; i++ {
		p := powers[i]
		if p <= 0 {
			return nil, fmt.Errorf("sinr: link %d has non-positive power %v", i, p)
		}
		m.lens[i] = g.LinkDist(netgraph.LinkID(i))
		m.signals[i] = p / math.Pow(m.lens[i], prm.Alpha)
	}
	m.buildWeights()
	m.name = fmt.Sprintf("sinr-fixed(%s)", kindName(kind))
	return m, nil
}

func kindName(k WeightKind) string {
	if k == WeightAffectance {
		return "affectance"
	}
	return "monotone"
}

func (m *FixedPower) buildWeights() {
	n := m.g.NumLinks()
	m.w = make([][]float64, n)
	for e := 0; e < n; e++ {
		m.w[e] = make([]float64, n)
	}
	for e := 0; e < n; e++ {
		for e2 := 0; e2 < n; e2++ {
			if e == e2 {
				m.w[e][e2] = 1
				continue
			}
			le, le2 := netgraph.LinkID(e), netgraph.LinkID(e2)
			switch m.kind {
			case WeightAffectance:
				m.w[e][e2] = Affectance(m.g, m.prm, m.powers, le2, le)
			case WeightMonotone:
				// Interference is charged to the shorter link only.
				if m.lens[e] <= m.lens[e2] {
					a1 := Affectance(m.g, m.prm, m.powers, le, le2)
					a2 := Affectance(m.g, m.prm, m.powers, le2, le)
					m.w[e][e2] = math.Max(a1, a2)
				}
			}
		}
	}
	m.rows = interference.SparseFromWeights(n, func(e, e2 int) float64 { return m.w[e][e2] })
}

// WeightRows implements interference.RowsProvider. For monotone
// assignments roughly half the matrix is structurally zero; for
// affectance matrices the CSR form still wins by replacing dynamic
// Weight calls with flat array scans.
func (m *FixedPower) WeightRows() *interference.Sparse { return m.rows }

// Name implements interference.Model.
func (m *FixedPower) Name() string { return m.name }

// NumLinks implements interference.Model.
func (m *FixedPower) NumLinks() int { return m.g.NumLinks() }

// Weight implements interference.Model.
func (m *FixedPower) Weight(e, e2 int) float64 { return m.w[e][e2] }

// Graph returns the underlying communication graph.
func (m *FixedPower) Graph() *netgraph.Graph { return m.g }

// Params returns the physical constants.
func (m *FixedPower) Params() Params { return m.prm }

// Power returns the transmission power of link e.
func (m *FixedPower) Power(e int) float64 { return m.powers[e] }

// LinkLen returns the length of link e.
func (m *FixedPower) LinkLen(e int) float64 { return m.lens[e] }

// Successes implements interference.Model using the exact SINR test: a
// transmission on ℓ succeeds when its link carries a single packet and
//
//	p(ℓ)/d(ℓ)^α ≥ β·(Σ_{ℓ'∈S, ℓ'≠ℓ} p(ℓ')/d(s', r)^α + ν).
func (m *FixedPower) Successes(tx []int) []bool {
	out := make([]bool, len(tx))
	if len(tx) == 0 {
		return out
	}
	counts := make([]int, m.g.NumLinks())
	for _, e := range tx {
		counts[e]++
	}
	// Unique transmitting links, for the O(u²) interference sums.
	uniq := make([]int, 0, len(tx))
	for e, c := range counts {
		if c > 0 {
			uniq = append(uniq, e)
		}
	}
	ok := make(map[int]bool, len(uniq))
	for _, e := range uniq {
		if counts[e] != 1 {
			continue
		}
		interf := m.prm.Noise
		recv := m.g.Link(netgraph.LinkID(e)).To
		for _, e2 := range uniq {
			if e2 == e {
				continue
			}
			d := m.g.NodeDist(m.g.Link(netgraph.LinkID(e2)).From, recv)
			if d == 0 {
				interf = math.Inf(1)
				break
			}
			interf += m.powers[e2] / math.Pow(d, m.prm.Alpha)
		}
		ok[e] = m.signals[e] >= m.prm.Beta*interf
	}
	for i, e := range tx {
		out[i] = counts[e] == 1 && ok[e]
	}
	return out
}

// NewResolver implements interference.SlotResolver with the same exact
// SINR test as Successes but buffers reused across slots: steady-state
// resolution performs no allocations. Links are visited in the same
// ascending order as Successes, so the floating-point interference sums
// — and therefore the outcomes — are bit-identical.
func (m *FixedPower) NewResolver() func(tx []int) []bool {
	s := interference.NewResolverScratch(m.g.NumLinks())
	return func(tx []int) []bool {
		out := s.Begin(tx)
		// Successes visits distinct links in ascending order; sorting the
		// first-occurrence list reproduces its summation order exactly.
		sort.Ints(s.Uniq)
		for i, e := range tx {
			if s.Counts[e] != 1 {
				continue
			}
			interf := m.prm.Noise
			recv := m.g.Link(netgraph.LinkID(e)).To
			for _, e2 := range s.Uniq {
				if e2 == e {
					continue
				}
				d := m.g.NodeDist(m.g.Link(netgraph.LinkID(e2)).From, recv)
				if d == 0 {
					interf = math.Inf(1)
					break
				}
				interf += m.powers[e2] / math.Pow(d, m.prm.Alpha)
			}
			out[i] = m.signals[e] >= m.prm.Beta*interf
		}
		s.End(tx)
		return out
	}
}
