package sinr

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dynsched/internal/geom"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// WeightKind selects which Section 6.1 weight matrix a fixed-power model
// uses for its analysis side.
type WeightKind int

// Weight matrix constructions from Section 6.1.
const (
	// WeightAffectance sets W[ℓ][ℓ'] = a_p(ℓ', ℓ): the interference ℓ'
	// causes at ℓ. This is the construction for linear power assignments.
	WeightAffectance WeightKind = iota + 1
	// WeightMonotone sets W[ℓ][ℓ'] = max{a_p(ℓ,ℓ'), a_p(ℓ',ℓ)} when
	// d(ℓ) ≤ d(ℓ') and 0 otherwise: the construction for monotone
	// (sub-)linear assignments such as uniform powers.
	WeightMonotone
)

// FixedPower is the SINR model with a fixed transmission power per link
// (Section 6.1). Its Successes method applies the exact physical SINR
// test; its Weight method exposes the chosen analysis matrix.
type FixedPower struct {
	g      *netgraph.Graph
	prm    Params
	powers []float64
	kind   WeightKind
	opts   Options
	info   TableInfo

	// Cached per-link quantities.
	lens    []float64 // link lengths
	signals []float64 // received signal strength p(ℓ)/d(ℓ)^α
	// gain.at(e, e2) = p(e2)/d(s', r)^α — the interference power a
	// transmission on e2 lands at e's receiver. Precomputed once so the
	// per-slot SINR test is a flat table sum with no math.Pow calls;
	// d(s', r) = 0 stores +Inf, exactly the value the division yields.
	// Nil under the indexed backing, which computes gains on demand.
	gain *crossTable

	// Indexed-backing state: sender/receiver positions per link and the
	// largest transmission power (the radius bound of the contribution
	// floor).
	sendPos []geom.Point
	recvPos []geom.Point
	pmax    float64

	// The analysis matrix. Table backings build it eagerly (the
	// historical behavior); the indexed backing builds it on first use —
	// exactly at ε = 0, floor-sparse through the spatial index at ε > 0
	// — so pure slot-resolution workloads never pay for it.
	weightsOnce sync.Once
	w           [][]float64
	rows        *interference.Sparse
	name        string

	// scratch pools fpScratch values for the Successes slow path. The
	// model may be shared across replication goroutines, so the scratch
	// cannot live on the struct directly.
	scratch sync.Pool

	// Cumulative resolver accounting (observability only — never read
	// by the resolution itself). Shared across the model's resolvers,
	// hence atomic.
	gridRebuilds     atomic.Uint64
	gridDeltaUpdates atomic.Uint64
}

// fpScratch fill modes: which range body runChunks executes.
const (
	fpModeTable = iota
	fpModeIndexedExact
	fpModeIndexedGrid
)

// fpScratch is the per-resolver buffer set: slot counting plus, under
// the indexed backing, the per-slot spatial grid and its id/ring
// buffers. It doubles as the resolver's parallel fan-out job (it
// implements chunkRunner), so dispatching a slot across workers stays
// allocation-free.
type fpScratch struct {
	rs   *interference.ResolverScratch
	grid geom.GridIndex
	sel  []int32

	// Fan-out state: the owning model, the worker count this resolver
	// runs with, the embedded reusable job, and the current slot's
	// inputs. wring holds one ring-iteration buffer per worker slot so
	// concurrent grid queries never share scratch.
	m       *FixedPower
	workers int
	job     parJob
	mode    int
	tx      []int
	out     []bool
	ptotal  float64
	wring   [][]int32
}

var (
	_ interference.Model                = (*FixedPower)(nil)
	_ interference.RowsProvider         = (*FixedPower)(nil)
	_ interference.SlotResolver         = (*FixedPower)(nil)
	_ interference.ParallelResolver     = (*FixedPower)(nil)
	_ interference.ResolveStatsProvider = (*FixedPower)(nil)
	_ chunkRunner                       = (*fpScratch)(nil)
)

// NewFixedPower builds a fixed-power SINR model with default options.
// The graph must carry node positions and powers must have one positive
// entry per link. Construction precomputes the cross-gain table and both
// weight matrices, fanning the O(n²) work across GOMAXPROCS goroutines;
// the results are bit-identical to the serial per-pair evaluation.
func NewFixedPower(g *netgraph.Graph, prm Params, powers []float64, kind WeightKind) (*FixedPower, error) {
	return NewFixedPowerOpts(g, prm, powers, kind, Options{})
}

// NewFixedPowerOpts is NewFixedPower with explicit storage options. The
// indexed backing (BackIndexed) requires planar positions: it stores no
// cross table at all — O(n) memory — and resolves slots through a
// spatial grid, bit-identical to the table backings at FarFloor = 0 and
// within the documented far-field envelope otherwise.
func NewFixedPowerOpts(g *netgraph.Graph, prm Params, powers []float64, kind WeightKind, opt Options) (*FixedPower, error) {
	if err := prm.Validate(); err != nil {
		return nil, err
	}
	if err := opt.validate(); err != nil {
		return nil, err
	}
	if !g.HasDistances() {
		return nil, fmt.Errorf("sinr: graph has neither positions nor a metric")
	}
	if len(powers) != g.NumLinks() {
		return nil, fmt.Errorf("sinr: %d powers for %d links", len(powers), g.NumLinks())
	}
	if kind != WeightAffectance && kind != WeightMonotone {
		return nil, fmt.Errorf("sinr: unknown weight kind %d", int(kind))
	}
	m := &FixedPower{
		g:      g,
		prm:    prm,
		powers: append([]float64(nil), powers...),
		kind:   kind,
		opts:   opt,
	}
	n := g.NumLinks()
	m.info = opt.tableInfo(n)
	m.lens = make([]float64, n)
	m.signals = make([]float64, n)
	for i := 0; i < n; i++ {
		p := powers[i]
		if p <= 0 {
			return nil, fmt.Errorf("sinr: link %d has non-positive power %v", i, p)
		}
		m.lens[i] = g.LinkDist(netgraph.LinkID(i))
		m.signals[i] = p / math.Pow(m.lens[i], prm.Alpha)
		if p > m.pmax {
			m.pmax = p
		}
	}
	if opt.Backing == BackIndexed {
		if err := m.initSpatial(); err != nil {
			return nil, err
		}
	} else {
		m.gain = buildCrossTableOpts(n, opt, func(at, src int) float64 {
			recv := g.Link(netgraph.LinkID(at)).To
			d := g.NodeDist(g.Link(netgraph.LinkID(src)).From, recv)
			// d == 0 divides to +Inf — the sentinel the SINR test expects.
			return m.powers[src] / math.Pow(d, prm.Alpha)
		})
		m.ensureWeights()
	}
	m.name = fmt.Sprintf("sinr-fixed(%s)", kindName(kind))
	m.scratch.New = func() any {
		return &fpScratch{
			rs:      interference.NewResolverScratch(n),
			m:       m,
			workers: effectiveWorkers(opt.Parallelism),
		}
	}
	return m, nil
}

// initSpatial caches per-link endpoint positions for the indexed
// backing. Positions (not a metric override) are required: the spatial
// grid prunes by planar distance, so the interference formula must read
// the same geometry.
func (m *FixedPower) initSpatial() error {
	if !m.g.HasPositions() || m.g.HasMetric() {
		return fmt.Errorf("sinr: the indexed backing requires planar node positions (no metric override)")
	}
	n := m.g.NumLinks()
	m.sendPos = make([]geom.Point, n)
	m.recvPos = make([]geom.Point, n)
	for e := 0; e < n; e++ {
		l := m.g.Link(netgraph.LinkID(e))
		m.sendPos[e] = m.g.Pos(l.From)
		m.recvPos[e] = m.g.Pos(l.To)
	}
	return nil
}

func kindName(k WeightKind) string {
	if k == WeightAffectance {
		return "affectance"
	}
	return "monotone"
}

// affectanceFromGain is Affectance rewritten over a precomputed gain
// entry: gain = p(ℓ)/d(s, r')^α and signal = p(ℓ')/d(ℓ')^α. A +Inf gain
// covers both the d(s, r') = 0 branch of Affectance and an underflowed
// path-loss power — in either case the original formula yields 1.
func affectanceFromGain(gain, signal, betaNoise, beta float64) float64 {
	if math.IsInf(gain, 1) {
		return 1
	}
	margin := signal - betaNoise
	if margin <= 0 {
		return 1
	}
	return math.Min(1, beta*gain/margin)
}

// gainAt returns the cross gain p(src)/d(s_src, r_at)^α: a table read
// when a table exists, otherwise the same formula evaluated on demand —
// the operations match the table build exactly, so both paths are
// bit-identical.
func (m *FixedPower) gainAt(at, src int) float64 {
	if m.gain != nil {
		return m.gain.at(at, src)
	}
	return m.powers[src] / math.Pow(m.sendPos[src].Dist(m.recvPos[at]), m.prm.Alpha)
}

// ensureWeights builds the analysis matrix on first use. Table backings
// call it at construction; the indexed backing defers it so pure
// slot-resolution workloads at large n never materialise W.
func (m *FixedPower) ensureWeights() {
	m.weightsOnce.Do(func() {
		if m.opts.Backing == BackIndexed && m.opts.FarFloor > 0 {
			m.buildWeightsFloorSparse()
			return
		}
		m.buildWeightsExact()
	})
}

// buildWeightsExact derives the analysis matrix entry for entry — via
// the gain table when one exists, via the identical on-demand formula
// under the indexed backing — and extracts its CSR form, both
// parallelized across rows. The result matches the Affectance-based
// construction bit for bit (same operations on the same values).
func (m *FixedPower) buildWeightsExact() {
	n := m.g.NumLinks()
	m.w = make([][]float64, n)
	betaNoise := m.prm.Beta * m.prm.Noise
	interference.ParallelRows(n, func(e int) {
		row := make([]float64, n)
		for e2 := 0; e2 < n; e2++ {
			if e == e2 {
				row[e2] = 1
				continue
			}
			switch m.kind {
			case WeightAffectance:
				row[e2] = affectanceFromGain(m.gainAt(e, e2), m.signals[e], betaNoise, m.prm.Beta)
			case WeightMonotone:
				// Interference is charged to the shorter link only.
				if m.lens[e] <= m.lens[e2] {
					a1 := affectanceFromGain(m.gainAt(e2, e), m.signals[e2], betaNoise, m.prm.Beta)
					a2 := affectanceFromGain(m.gainAt(e, e2), m.signals[e], betaNoise, m.prm.Beta)
					row[e2] = math.Max(a1, a2)
				}
			}
		}
		m.w[e] = row
	})
	m.rows = interference.SparseFromWeightsParallel(n, func(e, e2 int) float64 { return m.w[e][e2] })
}

// WeightRows implements interference.RowsProvider. For monotone
// assignments roughly half the matrix is structurally zero; for
// affectance matrices the CSR form still wins by replacing dynamic
// Weight calls with flat array scans.
func (m *FixedPower) WeightRows() *interference.Sparse {
	m.ensureWeights()
	return m.rows
}

// Name implements interference.Model.
func (m *FixedPower) Name() string { return m.name }

// NumLinks implements interference.Model.
func (m *FixedPower) NumLinks() int { return m.g.NumLinks() }

// Weight implements interference.Model.
func (m *FixedPower) Weight(e, e2 int) float64 {
	m.ensureWeights()
	if m.w != nil {
		return m.w[e][e2]
	}
	return m.rows.At(e, e2)
}

// Table reports which backing the model resolved to and with which
// knobs — the run-diagnostics record.
func (m *FixedPower) Table() TableInfo { return m.info }

// Graph returns the underlying communication graph.
func (m *FixedPower) Graph() *netgraph.Graph { return m.g }

// Params returns the physical constants.
func (m *FixedPower) Params() Params { return m.prm }

// Power returns the transmission power of link e.
func (m *FixedPower) Power(e int) float64 { return m.powers[e] }

// LinkLen returns the length of link e.
func (m *FixedPower) LinkLen(e int) float64 { return m.lens[e] }

// Successes implements interference.Model using the exact SINR test: a
// transmission on ℓ succeeds when its link carries a single packet and
//
//	p(ℓ)/d(ℓ)^α ≥ β·(Σ_{ℓ'∈S, ℓ'≠ℓ} p(ℓ')/d(s', r)^α + ν).
//
// The interference sum reads the precomputed gain table (or, under the
// indexed backing, the spatial grid); counting scratch comes from a
// pool, so the only allocation is the returned slice. Hot loops should
// use NewResolver, which reuses that too.
func (m *FixedPower) Successes(tx []int) []bool {
	out := make([]bool, len(tx))
	if len(tx) == 0 {
		return out
	}
	sc := m.scratch.Get().(*fpScratch)
	sc.rs.Count(tx)
	m.dispatchSuccesses(sc, tx, out)
	sc.rs.End(tx)
	m.scratch.Put(sc)
	return out
}

// dispatchSuccesses routes a counted slot to the backing's fill path,
// fanning the per-link loop across the resolver's workers when the slot
// is large enough (see runRanges).
func (m *FixedPower) dispatchSuccesses(sc *fpScratch, tx []int, out []bool) {
	sort.Ints(sc.rs.Uniq)
	sc.tx, sc.out = tx, out
	if m.opts.Backing == BackIndexed {
		m.fillSuccessesIndexed(sc)
	} else {
		sc.mode = fpModeTable
		m.runRanges(sc)
	}
	sc.tx, sc.out = nil, nil
}

// runRanges executes the scratch's current fill mode over every tx
// index: sharded across the worker pool for large slots, in one serial
// call otherwise. The per-link bodies write disjoint out entries and
// read only shared immutable state, and each link's interference sum is
// accumulated wholly by its one claimant in the serial order — so the
// output is bit-identical at every worker count.
func (m *FixedPower) runRanges(sc *fpScratch) {
	n := len(sc.tx)
	if workers := sc.workers; workers > 1 && n >= parallelMinTx {
		for len(sc.wring) < workers {
			sc.wring = append(sc.wring, nil)
		}
		runParallel(&sc.job, sc, n, workers)
		return
	}
	if len(sc.wring) == 0 {
		sc.wring = append(sc.wring, nil)
	}
	m.fillRange(sc, 0, 0, n)
}

// runChunks implements chunkRunner: claim contiguous tx ranges until
// the slot is exhausted.
func (sc *fpScratch) runChunks(slot int) {
	for {
		lo, hi := sc.job.claim()
		if lo < 0 {
			return
		}
		sc.m.fillRange(sc, slot, lo, hi)
	}
}

// fillRange dispatches one contiguous tx range to the active mode's
// body.
func (m *FixedPower) fillRange(sc *fpScratch, slot, lo, hi int) {
	switch sc.mode {
	case fpModeTable:
		m.fillTableRange(sc, lo, hi)
	case fpModeIndexedExact:
		m.fillIndexedExactRange(sc, lo, hi)
	default:
		m.fillIndexedGridRange(sc, slot, lo, hi)
	}
}

// fillTableRange resolves tx[lo:hi] of the counted slot against the
// gain table. Distinct links are summed in ascending order — the
// historical Successes order — so the floating-point interference sums,
// and therefore the outcomes, are bit-identical across the Successes
// and NewResolver paths, across dense and CSR table backings, and
// across worker counts. A co-located interferer contributes a +Inf
// gain; adding it yields the same +Inf sum the pre-table code produced
// by short-circuiting (all terms are non-negative, so no NaN can
// arise).
func (m *FixedPower) fillTableRange(sc *fpScratch, lo, hi int) {
	s := sc.rs
	for i := lo; i < hi; i++ {
		e := sc.tx[i]
		if s.Counts[e] != 1 {
			continue
		}
		interf := m.prm.Noise
		if row := m.gain.denseRow(e); row != nil {
			for _, e2 := range s.Uniq {
				if e2 != e {
					interf += row[e2]
				}
			}
		} else {
			// CSR backing: merge-join the sorted uniq list with the row's
			// ascending columns; absent entries are exact +0.0 terms, so
			// skipping them leaves the sum bit-identical.
			cols, vals := m.gain.csrRow(e)
			k := 0
			for _, e2 := range s.Uniq {
				if e2 == e {
					continue
				}
				for k < len(cols) && int(cols[k]) < e2 {
					k++
				}
				if k < len(cols) && int(cols[k]) == e2 {
					interf += vals[k]
				}
			}
		}
		sc.out[i] = m.signals[e] >= m.prm.Beta*interf
	}
}

// fillSuccessesIndexed resolves one counted slot through the spatial
// index. At FarFloor = 0 the interference sum visits every distinct
// transmitting link in ascending order with the exact table-build
// formula — bit-identical to the table paths. At FarFloor = ε > 0 the
// per-slot grid over the transmitting senders is ring-expanded around
// each receiver: interferers in cells within the contribution-floor
// radius are summed exactly, farther cells are charged their aggregate
// power over their box distance, and the unvisited remainder is closed
// with geom.FarFieldBound once it drops below the ε budget. The
// resulting estimate Î = near + tail always satisfies Î ≥ I_true, so
// reported successes are true SINR successes.
//
// The grid is prepared serially — incrementally when the previous
// slot's geometry and most of its transmitter set carry over — and is
// immutable during the fanned-out per-link queries.
func (m *FixedPower) fillSuccessesIndexed(sc *fpScratch) {
	if m.opts.FarFloor == 0 {
		sc.mode = fpModeIndexedExact
		m.runRanges(sc)
		return
	}
	sel := sc.sel[:0]
	ptotal := 0.0
	for _, e := range sc.rs.Uniq {
		sel = append(sel, int32(e))
		ptotal += m.powers[e]
	}
	sc.sel = sel
	sc.ptotal = ptotal
	m.prepareGrid(sc)
	sc.mode = fpModeIndexedGrid
	m.runRanges(sc)
}

// prepareGrid brings sc.grid to the current slot's ascending selection.
// When the stable geometry matches the grid's current frame and at most
// half the selection changed, the grid is updated in O(delta)
// floating-point work; otherwise it is rebuilt. Both paths leave
// bit-identical grid state (geom.TryUpdate's contract), so the choice —
// and therefore slot history, including checkpoint resume points — is
// invisible in the results.
func (m *FixedPower) prepareGrid(sc *fpScratch) {
	geo := geom.StableGeometry(m.sendPos, sc.sel, m.opts.CellSize)
	if sc.grid.TryUpdate(m.sendPos, sc.sel, m.powers, geo, len(sc.sel)/2) {
		m.gridDeltaUpdates.Add(1)
		return
	}
	sc.grid.FillGeom(m.sendPos, sc.sel, m.powers, geo)
	m.gridRebuilds.Add(1)
}

// fillIndexedExactRange is the FarFloor = 0 indexed body: every
// distinct transmitter summed exactly, ascending.
func (m *FixedPower) fillIndexedExactRange(sc *fpScratch, lo, hi int) {
	s := sc.rs
	alpha, beta := m.prm.Alpha, m.prm.Beta
	for i := lo; i < hi; i++ {
		e := sc.tx[i]
		if s.Counts[e] != 1 {
			continue
		}
		interf := m.prm.Noise
		recv := m.recvPos[e]
		for _, e2 := range s.Uniq {
			if e2 != e {
				interf += m.powers[e2] / math.Pow(m.sendPos[e2].Dist(recv), alpha)
			}
		}
		sc.out[i] = m.signals[e] >= beta*interf
	}
}

// fillIndexedGridRange is the FarFloor > 0 indexed body, with a
// per-worker ring buffer so concurrent queries never share iteration
// scratch.
func (m *FixedPower) fillIndexedGridRange(sc *fpScratch, slot, lo, hi int) {
	s := sc.rs
	beta := m.prm.Beta
	for i := lo; i < hi; i++ {
		e := sc.tx[i]
		if s.Counts[e] != 1 {
			continue
		}
		near, tail := m.indexedInterference(sc, e, sc.ptotal, &sc.wring[slot])
		sc.out[i] = m.signals[e] >= beta*(near+tail)
	}
}

// indexedInterference computes the spatially-indexed interference
// estimate at link e's receiver against the slot grid in sc: near is the
// noise plus the exactly-summed contribution of every interferer in
// cells within the contribution-floor radius, tail the rigorous upper
// bound on everything else (per-cell aggregates plus the far-field
// remainder). ptotal is the total transmitting power in the grid.
//
// Soundness: near + tail ≥ I_true always — each aggregated cell is
// charged its full power at its closest box point, and the remainder is
// charged at the closest unvisited cell distance (geom.FarFieldBound).
// Accuracy: every interferer whose individual affectance on e reaches
// the floor ε lies within the exact radius, so the per-term error of
// the estimate is below ε·signal/β, and the remainder term alone is
// below that same budget. Per-slot cost is the number of cells and
// points within the stop radius — local density, not n.
//
// ringp is the caller's reusable ring-cell buffer (one per worker under
// parallel resolution); it is grown in place and written back.
func (m *FixedPower) indexedInterference(sc *fpScratch, e int, ptotal float64, ringp *[]int32) (near, tail float64) {
	alpha, beta := m.prm.Alpha, m.prm.Beta
	grid := &sc.grid
	q := m.recvPos[e]
	near = m.prm.Noise
	budget := m.opts.FarFloor * m.signals[e] / beta
	// A single interferer at distance d contributes p/d^α ≥ budget only
	// when d^α ≤ pmax/budget: cells beyond that radius hold only
	// below-floor interferers and may be aggregated.
	rex2 := math.Pow(m.pmax/budget, 2/alpha)
	cx, cy := grid.CellAt(q)
	visited := 0.0
	maxRing := grid.MaxRing(cx, cy)
	ring := *ringp
	for r := 0; r <= maxRing; r++ {
		var cont bool
		ring, cont = grid.RingCells(cx, cy, r, ring[:0])
		for _, ci := range ring {
			w := grid.CellWeightAt(ci)
			if w == 0 {
				continue
			}
			visited += w
			d2 := grid.CellMinDistSqAt(q, ci)
			if d2 <= rex2 {
				for _, id := range grid.CellIDsAt(ci) {
					e2 := int(id)
					if e2 == e {
						continue
					}
					near += m.powers[e2] / math.Pow(m.sendPos[e2].Dist(q), alpha)
				}
			} else {
				tail += w / math.Pow(d2, alpha/2)
			}
		}
		if !cont {
			break
		}
		rem := ptotal - visited
		if rem <= 0 {
			break
		}
		od, ok := grid.OuterDist(q, cx, cy, r)
		if !ok {
			break
		}
		if b := geom.FarFieldBound(alpha, rem, od); b <= budget {
			tail += b
			break
		}
	}
	*ringp = ring
	return near, tail
}

// NewResolver implements interference.SlotResolver with the same exact
// SINR test as Successes but every buffer reused across slots:
// steady-state resolution performs no allocations and (on the table
// backings) no math.Pow calls — each interference term is one table
// read. The indexed backing re-buckets the transmitting senders into its
// reusable grid each slot and computes the near terms on the fly.
// Large slots are sharded across the intra-slot worker pool per
// Options.Parallelism (default GOMAXPROCS); results are bit-identical
// at every worker count.
func (m *FixedPower) NewResolver() func(tx []int) []bool {
	return m.NewResolverN(effectiveWorkers(m.opts.Parallelism))
}

// NewResolverN implements interference.ParallelResolver: a resolver
// pinned to an explicit intra-slot worker count (1 = strictly serial).
func (m *FixedPower) NewResolverN(workers int) func(tx []int) []bool {
	sc := m.scratch.New().(*fpScratch)
	if workers < 1 {
		workers = 1
	}
	sc.workers = workers
	return func(tx []int) []bool {
		out := sc.rs.Begin(tx)
		m.dispatchSuccesses(sc, tx, out)
		sc.rs.End(tx)
		return out
	}
}

// ResolveStats implements interference.ResolveStatsProvider.
func (m *FixedPower) ResolveStats() interference.ResolveStats {
	return interference.ResolveStats{
		Workers:          effectiveWorkers(m.opts.Parallelism),
		GridRebuilds:     m.gridRebuilds.Load(),
		GridDeltaUpdates: m.gridDeltaUpdates.Load(),
	}
}
