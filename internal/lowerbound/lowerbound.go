// Package lowerbound implements the Theorem 20 / Figure 1 instance: a
// uniform-power SINR network with m−1 interference-free short links and
// one long link that succeeds only when every short link is silent.
// With a global clock, even/odd TDM is stable for per-link arrival
// probability λ < 1/2; with only local clocks, any acknowledgement-based
// protocol lets the short links desynchronize and the long link starves
// once λ ≥ ln m / m.
package lowerbound

import (
	"math/rand"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
)

// Model is the Figure 1 interference structure over m links: links
// 0..m-2 are the short links, link m-1 is the long link.
type Model struct {
	M int
}

var _ interference.Model = Model{}

// Long returns the ID of the long link.
func (m Model) Long() int { return m.M - 1 }

// Name implements interference.Model.
func (Model) Name() string { return "figure1" }

// NumLinks implements interference.Model.
func (m Model) NumLinks() int { return m.M }

// Weight implements interference.Model: the long link is affected by
// everything; short links only by themselves.
func (m Model) Weight(e, e2 int) float64 {
	if e == e2 {
		return 1
	}
	if e == m.Long() {
		return 1
	}
	return 0
}

// Successes implements interference.Model: a short link succeeds
// whenever it carries one packet; the long link succeeds only alone.
func (m Model) Successes(tx []int) []bool {
	counts := make([]int, m.M)
	for _, e := range tx {
		counts[e]++
	}
	out := make([]bool, len(tx))
	for i, e := range tx {
		if counts[e] != 1 {
			continue
		}
		if e == m.Long() {
			out[i] = len(tx) == 1
		} else {
			out[i] = true
		}
	}
	return out
}

// Network returns a single-hop graph whose m links match the model, and
// the per-link single-hop paths.
func Network(m int) (*netgraph.Graph, []netgraph.Path) {
	g := netgraph.MACChannel(m) // geometry-free m-link graph
	paths := make([]netgraph.Path, m)
	for e := 0; e < m; e++ {
		paths[e] = netgraph.Path{netgraph.LinkID(e)}
	}
	return g, paths
}

// PerLinkBernoulli builds the theorem's injection: each link receives a
// packet with probability lambda in every slot, independently.
func PerLinkBernoulli(model interference.Model, paths []netgraph.Path, lambda float64) (*inject.Stochastic, error) {
	gens := make([]inject.Generator, len(paths))
	for i, p := range paths {
		gens[i] = inject.Generator{Choices: []inject.PathChoice{{Path: p, P: lambda}}}
	}
	return inject.NewStochastic(model, gens)
}

// GlobalTDM is the global-clock protocol of Theorem 20's positive side:
// short links transmit in even slots, the long link in odd slots.
// Stable whenever the per-link arrival probability is below 1/2.
type GlobalTDM struct {
	model Model
	q     [][]int64 // per-link FIFO of packet IDs
	held  int
}

var _ sim.Protocol = (*GlobalTDM)(nil)

// NewGlobalTDM builds the protocol.
func NewGlobalTDM(m Model) *GlobalTDM {
	return &GlobalTDM{model: m, q: make([][]int64, m.M)}
}

// Name implements sim.Protocol.
func (*GlobalTDM) Name() string { return "global-tdm" }

// QueueLen returns the number of packets held.
func (p *GlobalTDM) QueueLen() int { return p.held }

// Inject implements sim.Protocol.
func (p *GlobalTDM) Inject(t int64, pkts []inject.Packet) {
	for _, ip := range pkts {
		e := int(ip.Path[0])
		p.q[e] = append(p.q[e], ip.ID)
		p.held++
	}
}

// Slot implements sim.Protocol.
func (p *GlobalTDM) Slot(t int64, rng *rand.Rand) []sim.Transmission {
	long := p.model.Long()
	if t%2 == 1 {
		if len(p.q[long]) > 0 {
			return []sim.Transmission{{Link: long, PacketID: p.q[long][0]}}
		}
		return nil
	}
	var out []sim.Transmission
	for e := 0; e < long; e++ {
		if len(p.q[e]) > 0 {
			out = append(out, sim.Transmission{Link: e, PacketID: p.q[e][0]})
		}
	}
	return out
}

// Feedback implements sim.Protocol.
func (p *GlobalTDM) Feedback(t int64, tx []sim.Transmission, success []bool) {
	for i, w := range tx {
		if success[i] {
			p.q[w.Link] = p.q[w.Link][1:]
			p.held--
		}
	}
}

// LocalGreedy is the natural acknowledgement-based local-clock protocol:
// every link transmits its head-of-line packet whenever its queue is
// non-empty. Short links never see failures (their transmissions always
// succeed), so no acknowledgement-based rule could teach them to
// synchronize pauses — which is exactly Theorem 20's point. The long
// link transmits persistently and succeeds only in the rare slots where
// every short link happens to be idle.
type LocalGreedy struct {
	model Model
	q     [][]int64
	held  int
	// LongSuccesses counts deliveries on the long link.
	LongSuccesses int64
}

var _ sim.Protocol = (*LocalGreedy)(nil)

// NewLocalGreedy builds the protocol.
func NewLocalGreedy(m Model) *LocalGreedy {
	return &LocalGreedy{model: m, q: make([][]int64, m.M)}
}

// Name implements sim.Protocol.
func (*LocalGreedy) Name() string { return "local-greedy" }

// QueueLen returns the number of packets held.
func (p *LocalGreedy) QueueLen() int { return p.held }

// LongQueueLen returns the long link's queue length.
func (p *LocalGreedy) LongQueueLen() int { return len(p.q[p.model.Long()]) }

// Inject implements sim.Protocol.
func (p *LocalGreedy) Inject(t int64, pkts []inject.Packet) {
	for _, ip := range pkts {
		e := int(ip.Path[0])
		p.q[e] = append(p.q[e], ip.ID)
		p.held++
	}
}

// Slot implements sim.Protocol.
func (p *LocalGreedy) Slot(t int64, rng *rand.Rand) []sim.Transmission {
	var out []sim.Transmission
	for e := range p.q {
		if len(p.q[e]) > 0 {
			out = append(out, sim.Transmission{Link: e, PacketID: p.q[e][0]})
		}
	}
	return out
}

// Feedback implements sim.Protocol.
func (p *LocalGreedy) Feedback(t int64, tx []sim.Transmission, success []bool) {
	for i, w := range tx {
		if success[i] {
			p.q[w.Link] = p.q[w.Link][1:]
			p.held--
			if w.Link == p.model.Long() {
				p.LongSuccesses++
			}
		}
	}
}
