package lowerbound

import (
	"context"
	"math"
	"testing"

	"dynsched/internal/interference"
	"dynsched/internal/sim"
)

func TestModelSemantics(t *testing.T) {
	m := Model{M: 4}
	if err := interference.ValidateWeights(m); err != nil {
		t.Fatal(err)
	}
	// Short links succeed together.
	s := m.Successes([]int{0, 1, 2})
	for i, ok := range s {
		if !ok {
			t.Errorf("short link %d failed", i)
		}
	}
	// The long link fails in company.
	s = m.Successes([]int{0, 3})
	if !s[0] || s[1] {
		t.Errorf("mixed slot: %v, want short ok / long failed", s)
	}
	// The long link succeeds alone.
	if s := m.Successes([]int{3}); !s[0] {
		t.Error("lone long transmission failed")
	}
	// Duplicates fail.
	if s := m.Successes([]int{1, 1}); s[0] || s[1] {
		t.Error("duplicates succeeded")
	}
}

func TestGlobalTDMStableBelowHalf(t *testing.T) {
	const m = 16
	model := Model{M: m}
	_, paths := Network(m)
	proc, err := PerLinkBernoulli(model, paths, 0.45)
	if err != nil {
		t.Fatal(err)
	}
	proto := NewGlobalTDM(model)
	res, err := sim.Run(context.Background(), sim.Config{Slots: 40000, Seed: 151}, model, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%d protocol errors", res.ProtocolErrors)
	}
	if !res.Verdict.Stable {
		t.Errorf("global TDM unstable at λ=0.45: %+v", res.Verdict)
	}
}

func TestLocalGreedyStarvesLongLink(t *testing.T) {
	// Theorem 20's negative side: with per-link arrivals at
	// λ = ln m / m, the long link's queue grows without bound under any
	// local-clock acknowledgement-based behaviour; greedy short links
	// are the natural instance.
	const m = 64
	lambda := math.Log(float64(m)) / float64(m) // ≈ 0.065
	model := Model{M: m}
	_, paths := Network(m)
	proc, err := PerLinkBernoulli(model, paths, lambda)
	if err != nil {
		t.Fatal(err)
	}
	proto := NewLocalGreedy(model)
	res, err := sim.Run(context.Background(), sim.Config{Slots: 60000, Seed: 152}, model, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%d protocol errors", res.ProtocolErrors)
	}
	// The long link should have accumulated a large backlog: arrivals
	// ≈ λ·slots ≈ 3900, service only in all-silent slots.
	if proto.LongQueueLen() < 500 {
		t.Errorf("long-link queue %d after 60k slots — starvation not reproduced (successes=%d)",
			proto.LongQueueLen(), proto.LongSuccesses)
	}
	// Meanwhile the same workload is easy with a global clock.
	proc2, err := PerLinkBernoulli(model, paths, lambda)
	if err != nil {
		t.Fatal(err)
	}
	tdm := NewGlobalTDM(model)
	res2, err := sim.Run(context.Background(), sim.Config{Slots: 60000, Seed: 152}, model, proc2, tdm)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Verdict.Stable {
		t.Errorf("global TDM unstable at λ=ln m/m: %+v", res2.Verdict)
	}
}

func TestNetworkShape(t *testing.T) {
	g, paths := Network(8)
	if g.NumLinks() != 8 || len(paths) != 8 {
		t.Fatalf("network has %d links, %d paths", g.NumLinks(), len(paths))
	}
	for i, p := range paths {
		if len(p) != 1 || int(p[0]) != i {
			t.Errorf("path %d = %v", i, p)
		}
	}
}
