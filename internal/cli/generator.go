package cli

import (
	"fmt"
	"math"
	"math/rand"

	"dynsched/internal/geom"
	"dynsched/internal/netgraph"
)

// Generator describes a seeded procedural sender→receiver network: a
// spatial placement process for the senders plus the shared link
// geometry (receiver at a uniform angle, length uniform in
// [MinLen, MaxLen]). The zero values of every knob except Kind and
// Links resolve to documented defaults, so a spec stays canonical —
// and its hash stable — while defaults evolve behind it.
type Generator struct {
	// Kind is the sender placement process: uniform, cluster, or grid.
	Kind string
	// Links is the number of sender→receiver pairs.
	Links int
	// Side is the placement square's side (0 = 10·√Links + 10, the
	// density the pairs topology uses at every size).
	Side float64
	// Clusters is the number of cluster centres (cluster kind;
	// 0 = max(1, Links/256)).
	Clusters int
	// Spread is the Gaussian spread of senders around their centre
	// (cluster kind; 0 = Side/16).
	Spread float64
	// MinLen and MaxLen bound the link length (0, 0 = 1, 4).
	MinLen, MaxLen float64
	// Seed drives the placement; 0 falls back to the workload seed.
	Seed int64
}

// withDefaults resolves the zero knobs against the fallback seed.
func (gen Generator) withDefaults(seed int64) Generator {
	if gen.Side == 0 {
		gen.Side = 10*math.Sqrt(float64(gen.Links)) + 10
	}
	if gen.Clusters == 0 {
		gen.Clusters = gen.Links / 256
		if gen.Clusters < 1 {
			gen.Clusters = 1
		}
	}
	if gen.Spread == 0 {
		gen.Spread = gen.Side / 16
	}
	if gen.MinLen == 0 && gen.MaxLen == 0 {
		gen.MinLen, gen.MaxLen = 1, 4
	}
	if gen.Seed == 0 {
		gen.Seed = seed
	}
	return gen
}

// Validate rejects malformed generator specs with a descriptive error.
func (gen Generator) Validate() error {
	switch gen.Kind {
	case "uniform", "cluster", "grid":
	default:
		return fmt.Errorf("unknown generator kind %q (want uniform, cluster, or grid)", gen.Kind)
	}
	if gen.Links <= 0 {
		return fmt.Errorf("generator needs a positive link count, got %d", gen.Links)
	}
	for _, p := range []struct {
		name string
		v    float64
	}{{"side", gen.Side}, {"spread", gen.Spread}, {"minLen", gen.MinLen}, {"maxLen", gen.MaxLen}} {
		if math.IsNaN(p.v) || math.IsInf(p.v, 0) || p.v < 0 {
			return fmt.Errorf("generator %s is %v (must be finite and non-negative)", p.name, p.v)
		}
	}
	if gen.Clusters < 0 {
		return fmt.Errorf("generator clusters is %d (must be non-negative)", gen.Clusters)
	}
	if gen.MinLen > 0 && gen.MaxLen > 0 && gen.MinLen > gen.MaxLen {
		return fmt.Errorf("generator minLen %v exceeds maxLen %v", gen.MinLen, gen.MaxLen)
	}
	return nil
}

// Build materialises the generator into a position-backed pairs graph.
// The same spec and fallback seed always produce the identical graph:
// every random draw comes from one seeded source in a fixed order.
func (gen Generator) Build(seed int64) (*netgraph.Graph, error) {
	if err := gen.Validate(); err != nil {
		return nil, err
	}
	gen = gen.withDefaults(seed)
	rng := rand.New(rand.NewSource(gen.Seed))
	n := gen.Links
	var senders []geom.Point
	switch gen.Kind {
	case "uniform":
		senders = geom.Uniform(rng, n, gen.Side)
	case "cluster":
		centres := geom.Uniform(rng, gen.Clusters, gen.Side)
		senders = make([]geom.Point, n)
		for i := range senders {
			c := centres[rng.Intn(len(centres))]
			senders[i] = geom.Point{
				X: c.X + rng.NormFloat64()*gen.Spread,
				Y: c.Y + rng.NormFloat64()*gen.Spread,
			}
		}
	case "grid":
		// Row-major cell centres of the smallest square grid holding n
		// senders; the trailing cells of the last row stay empty.
		k := int(math.Ceil(math.Sqrt(float64(n))))
		spacing := gen.Side / float64(k)
		senders = make([]geom.Point, n)
		for i := range senders {
			senders[i] = geom.Point{
				X: (float64(i%k) + 0.5) * spacing,
				Y: (float64(i/k) + 0.5) * spacing,
			}
		}
	}
	return netgraph.PairsAt(rng, senders, gen.MinLen, gen.MaxLen), nil
}
