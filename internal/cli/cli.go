// Package cli holds the workload-construction logic behind cmd/dynsched
// so it can be tested: flag values come in as an Options struct, and a
// fully wired simulation (model, injection process, protocol) comes out.
package cli

import (
	"fmt"
	"math/rand"

	"dynsched/internal/core"
	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/mac"
	"dynsched/internal/netgraph"
	"dynsched/internal/sinr"
	"dynsched/internal/static"
	"dynsched/internal/traffic"
)

// Options mirror cmd/dynsched's flags; they compile into a Workload
// via Build. (Persisted run configurations are dynsched.Scenario JSON
// documents, parsed one level up by dynsched.ParseScenario.)
type Options struct {
	Model    string  `json:"model"`    // identity, mac, sinr-linear, sinr-uniform, sinr-power-control
	Topology string  `json:"topology"` // line, grid, grid-convergecast, pairs, nested, mac, auto
	Alg      string  `json:"alg"`      // full-parallel, decay, spread, densify, trivial, mac-decay, rrw, backoff, greedy-pc, auto
	Nodes    int     `json:"nodes"`    // node count for line/grid
	Links    int     `json:"links"`    // link count for pairs/nested/mac
	Hops     int     `json:"hops"`     // path length for multi-hop workloads
	Lambda   float64 `json:"lambda"`   // injection rate, measure units per slot
	Eps      float64 `json:"eps"`      // protocol headroom
	Seed     int64   `json:"seed"`
	Adv      string  `json:"adversary"` // "", burst, spread, sawtooth, rotating
	Window   int     `json:"window"`
	LossP    float64 `json:"loss"`
	// Trace, when non-empty, replays the recorded injection sequence
	// instead of a stochastic or adversarial process (traffic pattern
	// "trace" at the scenario layer).
	Trace []inject.TraceRecord `json:"trace,omitempty"`
	// Frame overrides the protocol's frame length T (0 solves for it).
	Frame int `json:"frame"`
	// DisableDelays turns off the adversarial random initial delays
	// (Section 5 ablation).
	DisableDelays bool `json:"disableDelays"`

	// Generator configures the "generator" topology: a seeded procedural
	// sender placement (uniform, cluster, grid). Gen.Links falls back to
	// Links and Gen.Seed to Seed when zero.
	Gen Generator `json:"generator"`

	// SINR model storage knobs (ignored by non-SINR models). Backing is
	// "", auto, dense, csr, or indexed; DenseMaxLinks moves the
	// dense-vs-CSR auto threshold (0 = built-in default); FarFloor and
	// CellSize tune the indexed backing's far-field contribution floor ε
	// and spatial cell size.
	Backing       string  `json:"backing"`
	DenseMaxLinks int     `json:"denseMaxLinks"`
	FarFloor      float64 `json:"farFloor"`
	CellSize      float64 `json:"cellSize"`

	// ResolveParallelism sets the intra-slot interference-resolution
	// worker count baked into SINR model resolvers (0 = GOMAXPROCS,
	// 1 = serial). A pure execution knob: results are bit-identical at
	// every value.
	ResolveParallelism int `json:"resolveParallelism,omitempty"`
}

// ModelDiag records which interference-table backing a built workload
// resolved to — surfaced as run diagnostics by the scenario layer.
type ModelDiag struct {
	Backing       string  `json:"backing"`
	DenseMaxLinks int     `json:"denseMaxLinks"`
	FarFloor      float64 `json:"farFloor,omitempty"`
	CellSize      float64 `json:"cellSize,omitempty"`
}

// Workload is the assembled simulation input.
type Workload struct {
	Graph    *netgraph.Graph
	Model    interference.Model
	Paths    []netgraph.Path
	M        int
	Protocol *core.Protocol
	Process  inject.Process
	// Diag is the SINR table-backing record (nil for non-SINR models).
	Diag *ModelDiag
}

// Build assembles the workload from the options.
func Build(o Options) (*Workload, error) {
	g, model, diag, paths, m, hops, err := buildNetwork(o)
	if err != nil {
		return nil, err
	}
	if o.LossP > 0 {
		// NewLossy wires a draw-counted RNG so lossy runs can be
		// checkpointed; the stream is identical to the previous
		// rand.New(rand.NewSource(o.Seed+99)) wiring.
		model = interference.NewLossy(model, o.LossP, o.Seed+99)
	}
	alg, err := PickAlgorithm(o.Alg, o.Model)
	if err != nil {
		return nil, err
	}

	var proc inject.Process
	window := 0
	if len(o.Trace) > 0 {
		if o.Adv != "" {
			return nil, fmt.Errorf("cli: trace replay and adversary %q are mutually exclusive", o.Adv)
		}
		for i, rec := range o.Trace {
			for _, e := range rec.Path {
				if e < 0 || int(e) >= model.NumLinks() {
					return nil, fmt.Errorf("cli: trace record %d path link %d out of range [0,%d)", i, e, model.NumLinks())
				}
			}
		}
		tr, err := inject.TraceFromRecords("replay", o.Lambda, 0, o.Trace)
		if err != nil {
			return nil, err
		}
		proc = tr
	} else if o.Adv != "" {
		timing, rotate, err := ParseAdversary(o.Adv)
		if err != nil {
			return nil, err
		}
		var adv inject.Adversary
		if rotate {
			adv, err = inject.NewRotating(model, paths, o.Window, o.Lambda, timing)
		} else {
			adv, err = inject.NewPattern(model, paths, o.Window, o.Lambda, timing)
		}
		if err != nil {
			return nil, err
		}
		proc, window = adv, o.Window
	} else {
		stoch, err := MultiPathStochastic(model, paths, o.Lambda)
		if err != nil {
			return nil, err
		}
		proc = stoch
	}

	proto, err := core.New(core.Config{
		Model: model, Alg: alg, M: m, T: o.Frame,
		Lambda: o.Lambda, Eps: o.Eps,
		Window: window, D: hops, Seed: o.Seed,
		DisableDelays: o.DisableDelays,
	})
	if err != nil {
		return nil, err
	}
	return &Workload{Graph: g, Model: model, Paths: paths, M: m, Protocol: proto, Process: proc, Diag: diag}, nil
}

// modelOptions resolves the SINR storage knobs into a sinr.Options.
func modelOptions(o Options) (sinr.Options, error) {
	backing, err := sinr.ParseBacking(o.Backing)
	if err != nil {
		return sinr.Options{}, err
	}
	return sinr.Options{
		Backing:       backing,
		DenseMaxLinks: o.DenseMaxLinks,
		FarFloor:      o.FarFloor,
		CellSize:      o.CellSize,
		Parallelism:   o.ResolveParallelism,
	}, nil
}

func buildNetwork(o Options) (*netgraph.Graph, interference.Model, *ModelDiag, []netgraph.Path, int, int, error) {
	rng := rand.New(rand.NewSource(o.Seed))
	topology := o.Topology
	if topology == "" || topology == "auto" {
		switch o.Model {
		case "identity":
			topology = "line"
		case "mac":
			topology = "mac"
		default:
			topology = "pairs"
		}
	}

	var g *netgraph.Graph
	var paths []netgraph.Path
	effHops := o.Hops
	switch topology {
	case "line":
		g = netgraph.LineNetwork(o.Nodes, 1)
		hops := o.Hops
		if hops >= o.Nodes {
			hops = o.Nodes - 1
		}
		if hops < 1 {
			hops = 1
		}
		p, ok := netgraph.ShortestPath(g, 0, netgraph.NodeID(hops))
		if !ok {
			return nil, nil, nil, nil, 0, 0, fmt.Errorf("no %d-hop path on line", hops)
		}
		paths = []netgraph.Path{p}
	case "grid":
		side := intSqrt(o.Nodes)
		g = netgraph.GridNetwork(side, side, 1)
		rt := netgraph.NewRoutingTable(g)
		n := netgraph.NodeID(side*side - 1)
		for _, pair := range [][2]netgraph.NodeID{{0, n}, {n, 0}} {
			if p, ok := rt.Path(pair[0], pair[1]); ok {
				paths = append(paths, p)
			}
		}
	case "grid-convergecast":
		// The sensor-network workload: every grid node routes to the
		// sink at node 0; the path bound is the longest route.
		side := intSqrt(o.Nodes)
		g = netgraph.GridNetwork(side, side, 1)
		rt := netgraph.NewRoutingTable(g)
		effHops = 0
		for v := netgraph.NodeID(1); int(v) < g.NumNodes(); v++ {
			p, ok := rt.Path(v, 0)
			if !ok {
				return nil, nil, nil, nil, 0, 0, fmt.Errorf("grid node %d cannot reach the sink", v)
			}
			paths = append(paths, p)
			if len(p) > effHops {
				effHops = len(p)
			}
		}
	case "pairs":
		g = netgraph.RandomPairs(rng, o.Links, 10*float64(intSqrt(o.Links))+10, 1, 4)
		for e := 0; e < g.NumLinks(); e++ {
			paths = append(paths, netgraph.Path{netgraph.LinkID(e)})
		}
	case "nested":
		g = netgraph.NestedChain(o.Links, 2)
		for e := 0; e < g.NumLinks(); e++ {
			paths = append(paths, netgraph.Path{netgraph.LinkID(e)})
		}
	case "mac":
		g = netgraph.MACChannel(o.Links)
		for e := 0; e < g.NumLinks(); e++ {
			paths = append(paths, netgraph.Path{netgraph.LinkID(e)})
		}
	case "generator":
		gen := o.Gen
		if gen.Links == 0 {
			gen.Links = o.Links
		}
		var err error
		g, err = gen.Build(o.Seed)
		if err != nil {
			return nil, nil, nil, nil, 0, 0, err
		}
		for e := 0; e < g.NumLinks(); e++ {
			paths = append(paths, netgraph.Path{netgraph.LinkID(e)})
		}
	default:
		return nil, nil, nil, nil, 0, 0, fmt.Errorf("unknown topology %q", topology)
	}
	if len(paths) == 0 {
		return nil, nil, nil, nil, 0, 0, fmt.Errorf("topology %q produced no paths", topology)
	}

	inst := netgraph.NewInstance(g, effHops)
	var model interference.Model
	var diag *ModelDiag
	switch o.Model {
	case "identity":
		model = interference.Identity{Links: g.NumLinks()}
	case "mac":
		model = interference.AllOnes{Links: g.NumLinks()}
	case "sinr-linear", "sinr-uniform":
		opt, err := modelOptions(o)
		if err != nil {
			return nil, nil, nil, nil, 0, 0, err
		}
		prm := sinr.DefaultParams()
		kind, wk := sinr.PowerLinear, sinr.WeightAffectance
		if o.Model == "sinr-uniform" {
			kind, wk = sinr.PowerUniform, sinr.WeightMonotone
		}
		powers, err := sinr.Powers(g, prm, kind, 1)
		if err != nil {
			return nil, nil, nil, nil, 0, 0, err
		}
		prm.Noise = sinr.MaxNoise(g, prm, powers, 0.5)
		fp, err := sinr.NewFixedPowerOpts(g, prm, powers, wk, opt)
		if err != nil {
			return nil, nil, nil, nil, 0, 0, err
		}
		model = fp
		diag = tableDiag(fp.Table())
	case "sinr-power-control":
		opt, err := modelOptions(o)
		if err != nil {
			return nil, nil, nil, nil, 0, 0, err
		}
		pc, err := sinr.NewPowerControlOpts(g, sinr.DefaultParams(), opt)
		if err != nil {
			return nil, nil, nil, nil, 0, 0, err
		}
		model = pc
		diag = tableDiag(pc.Table())
	default:
		return nil, nil, nil, nil, 0, 0, fmt.Errorf("unknown model %q", o.Model)
	}
	return g, model, diag, paths, inst.M(), effHops, nil
}

// tableDiag converts a model's TableInfo into the diagnostics record.
func tableDiag(ti sinr.TableInfo) *ModelDiag {
	return &ModelDiag{
		Backing:       ti.Backing,
		DenseMaxLinks: ti.DenseMaxLinks,
		FarFloor:      ti.FarFloor,
		CellSize:      ti.CellSize,
	}
}

// PickAlgorithm resolves an algorithm name; "auto" chooses per model.
func PickAlgorithm(name, model string) (static.Algorithm, error) {
	if name == "" || name == "auto" {
		switch model {
		case "identity":
			name = "full-parallel"
		case "mac":
			name = "rrw"
		case "sinr-power-control":
			name = "greedy-pc"
		default:
			name = "spread"
		}
	}
	switch name {
	case "full-parallel":
		return static.FullParallel{}, nil
	case "decay":
		return static.Decay{}, nil
	case "decay-adaptive":
		return static.Decay{Adaptive: true}, nil
	case "spread":
		return static.Spread{}, nil
	case "densify":
		return static.Densify{Inner: static.Decay{}, Chi: 6}, nil
	case "trivial":
		return static.Trivial{}, nil
	case "mac-decay":
		return mac.Decay{}, nil
	case "rrw":
		return mac.RoundRobinWithholding{}, nil
	case "backoff":
		return mac.Backoff{}, nil
	case "greedy-pc":
		return static.GreedyPowerControl{}, nil
	default:
		return nil, fmt.Errorf("unknown algorithm %q", name)
	}
}

// ParseAdversary resolves an adversary spec into a timing and rotation
// flag.
func ParseAdversary(s string) (inject.Timing, bool, error) {
	switch s {
	case "burst":
		return inject.TimingBurst, false, nil
	case "spread":
		return inject.TimingSpread, false, nil
	case "sawtooth":
		return inject.TimingSawtooth, false, nil
	case "rotating":
		return inject.TimingBurst, true, nil
	default:
		return 0, false, fmt.Errorf("unknown adversary timing %q", s)
	}
}

// MultiPathStochastic builds a stochastic process over the given paths
// at exactly rate lambda. It is the traffic package's Paths workload,
// re-exported under the CLI's historical name.
func MultiPathStochastic(m interference.Model, paths []netgraph.Path, lambda float64) (*inject.Stochastic, error) {
	return traffic.Paths(m, paths, lambda)
}

func intSqrt(n int) int {
	if n < 1 {
		return 1
	}
	r := 1
	for (r+1)*(r+1) <= n {
		r++
	}
	return r
}
