// Shared flag and signal handling for the cmd/ binaries, so the two
// commands register identical workload flags and react to Ctrl-C the
// same way: the first signal cancels the run context (simulations stop
// promptly with partial results), a second one kills the process.
package cli

import (
	"context"
	"flag"
	"os"
	"os/signal"
	"syscall"
	"time"
)

// RegisterWorkloadFlags registers the workload-construction flags onto
// fs, writing into o. Callers set the defaults by pre-filling o.
func RegisterWorkloadFlags(fs *flag.FlagSet, o *Options) {
	fs.StringVar(&o.Model, "model", o.Model, "interference model: identity, mac, sinr-linear, sinr-uniform, sinr-power-control")
	fs.StringVar(&o.Topology, "topology", o.Topology, "topology: line, grid, grid-convergecast, pairs, nested, mac, auto")
	fs.StringVar(&o.Alg, "alg", o.Alg, "static algorithm: full-parallel, decay, decay-adaptive, spread, densify, trivial, mac-decay, rrw, backoff, greedy-pc, auto")
	fs.IntVar(&o.Nodes, "nodes", o.Nodes, "node count (line/grid topologies)")
	fs.IntVar(&o.Links, "links", o.Links, "link count (pairs/nested/mac topologies)")
	fs.IntVar(&o.Hops, "hops", o.Hops, "path length for multi-hop workloads")
	fs.Float64Var(&o.Lambda, "lambda", o.Lambda, "injection rate in measure units per slot")
	fs.Float64Var(&o.Eps, "eps", o.Eps, "protocol headroom ε")
	fs.Int64Var(&o.Seed, "seed", o.Seed, "random seed")
	fs.StringVar(&o.Adv, "adversary", o.Adv, "adversarial timing: burst, spread, sawtooth, rotating (empty = stochastic)")
	fs.IntVar(&o.Window, "window", o.Window, "adversary window length w")
	fs.Float64Var(&o.LossP, "loss", o.LossP, "independent per-transmission loss probability")
	fs.IntVar(&o.Frame, "frame", o.Frame, "frame length T override (0 = solve)")
	fs.BoolVar(&o.DisableDelays, "no-delays", o.DisableDelays, "disable the adversarial random initial delays (ablation)")
	fs.IntVar(&o.ResolveParallelism, "resolve-parallelism", o.ResolveParallelism, "intra-slot interference-resolution workers (0 = all CPUs, 1 = serial); results are bit-identical at every value")
}

// ServerOptions mirror cmd/dynschedd's flags: where to listen and how
// the job queue, worker pool and result cache are sized.
type ServerOptions struct {
	Addr          string
	Workers       int
	QueueDepth    int
	CacheEntries  int
	CacheDir      string
	CacheDiskMax  int
	ProgressEvery int64
	// JournalDir enables the durable tier: job journal + checkpoint
	// store, replayed on startup to recover incomplete jobs.
	JournalDir string
	// CheckpointEvery is the engine checkpoint period in slots (0 with
	// a journal dir = 10000, negative = off).
	CheckpointEvery int64
	// ShutdownGrace is how long a draining shutdown lets running jobs
	// finish before hard-cancelling them.
	ShutdownGrace time.Duration
	// Pprof mounts net/http/pprof under /debug/pprof/ on the service
	// listener. Off by default: the profiling surface is a diagnostic
	// tool, not part of the API.
	Pprof bool
	// ResolveParallelism is the default intra-slot resolution worker
	// count injected into submitted scenarios that leave theirs at 0
	// (0 = leave the model default, 1 = force serial). A pure execution
	// knob: it never changes results or cache keys.
	ResolveParallelism int
	// Join, when set, turns the process into a fleet runner: instead of
	// serving the job API it leases plan-unit batches from the
	// coordinator at this base URL, executes them locally and streams
	// the results back. -addr then serves only the runner's own
	// /healthz and /metrics.
	Join string
	// RunnerID names this runner on the coordinator's fleet roster
	// (empty = host.pid).
	RunnerID string
	// LeaseExpiry is the coordinator's fleet lease lifetime: a runner
	// silent for this long is presumed dead and its units re-granted
	// (0 = 15s).
	LeaseExpiry time.Duration
	// FleetBatchMax caps one fleet lease grant (0 = 64 units).
	FleetBatchMax int
	// FleetLocal sizes the coordinator's own share of plan-unit
	// execution: 0 = the planner's resolved pool, >0 pins the local
	// slot count, <0 = dispatch-only (every unit must run on a runner).
	FleetLocal int
}

// RegisterServerFlags registers the dynschedd service flags onto fs,
// writing into o. Callers set the defaults by pre-filling o.
func RegisterServerFlags(fs *flag.FlagSet, o *ServerOptions) {
	fs.StringVar(&o.Addr, "addr", o.Addr, "HTTP listen address")
	fs.IntVar(&o.Workers, "workers", o.Workers, "simulation worker pool size (0 = all CPUs)")
	fs.IntVar(&o.QueueDepth, "queue", o.QueueDepth, "bounded job queue depth; submissions beyond it get 503")
	fs.IntVar(&o.CacheEntries, "cache", o.CacheEntries, "in-memory result cache entries (0 = default 256)")
	fs.StringVar(&o.CacheDir, "cache-dir", o.CacheDir, "spill cached results to this directory (empty = memory only)")
	fs.IntVar(&o.CacheDiskMax, "cache-disk-max", o.CacheDiskMax, "bound the spill directory to this many entries, evicting oldest first (0 = unbounded)")
	fs.Int64Var(&o.ProgressEvery, "progress-every", o.ProgressEvery, "progress event period in slots (0 = run length / 20)")
	fs.StringVar(&o.JournalDir, "journal-dir", o.JournalDir, "journal job lifecycle events to this directory and recover incomplete jobs on startup (empty = no durability)")
	fs.Int64Var(&o.CheckpointEvery, "checkpoint-every", o.CheckpointEvery, "engine checkpoint period in slots with -journal-dir (0 = 10000, negative = off)")
	fs.DurationVar(&o.ShutdownGrace, "shutdown-grace", o.ShutdownGrace, "how long a draining shutdown lets running jobs finish before dropping them for recovery")
	fs.BoolVar(&o.Pprof, "pprof", o.Pprof, "serve net/http/pprof under /debug/pprof/ for live profiling")
	fs.IntVar(&o.ResolveParallelism, "resolve-parallelism", o.ResolveParallelism, "default intra-slot resolution workers for submitted scenarios that leave theirs unset (0 = model default, 1 = serial)")
	fs.StringVar(&o.Join, "join", o.Join, "run as a fleet runner leasing plan units from the coordinator at this base URL (e.g. http://coord:8080); -addr then serves only the runner's /healthz and /metrics")
	fs.StringVar(&o.RunnerID, "runner-id", o.RunnerID, "fleet roster name for this runner with -join (empty = host.pid)")
	fs.DurationVar(&o.LeaseExpiry, "lease-expiry", o.LeaseExpiry, "fleet lease lifetime; a runner silent for this long is presumed dead and its units are re-granted (0 = 15s)")
	fs.IntVar(&o.FleetBatchMax, "batch-max", o.FleetBatchMax, "maximum plan units per fleet lease grant (0 = 64)")
	fs.IntVar(&o.FleetLocal, "fleet-local", o.FleetLocal, "coordinator's own plan-unit execution slots: 0 = the planner's pool, >0 pins the count, negative = dispatch-only")
}

// SignalContext returns a context cancelled by SIGINT/SIGTERM. The
// signal handler is released as soon as the context is done (or the
// returned stop function is called), restoring the default disposition
// — so a second Ctrl-C terminates the process immediately even while
// cancelled work is still unwinding.
func SignalContext() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	context.AfterFunc(ctx, stop)
	return ctx, stop
}
