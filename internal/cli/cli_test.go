package cli

import (
	"context"
	"flag"
	"strings"
	"testing"

	"dynsched/internal/sim"
)

func defaults() Options {
	return Options{
		Model: "identity", Topology: "auto", Alg: "auto",
		Nodes: 6, Links: 8, Hops: 3, Lambda: 0.3, Eps: 0.25, Seed: 1,
		Window: 32,
	}
}

func TestBuildEveryModel(t *testing.T) {
	models := []string{"identity", "mac", "sinr-linear", "sinr-uniform", "sinr-power-control"}
	for _, m := range models {
		o := defaults()
		o.Model = m
		switch m {
		case "sinr-power-control":
			o.Lambda = 0.01 // the centralized scheduler's throughput is lower
		case "sinr-linear", "sinr-uniform":
			o.Lambda = 0.05 // Spread's f(m) ≈ 8 caps the rate well below 1
		}
		w, err := Build(o)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if w.Model == nil || w.Protocol == nil || w.Process == nil {
			t.Fatalf("%s: incomplete workload", m)
		}
		// Every built workload must actually simulate.
		res, err := sim.Run(context.Background(), sim.Config{Slots: 2000, Seed: 2}, w.Model, w.Process, w.Protocol)
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if res.ProtocolErrors != 0 {
			t.Fatalf("%s: %d protocol errors", m, res.ProtocolErrors)
		}
	}
}

func TestBuildEveryTopology(t *testing.T) {
	for _, topo := range []string{"line", "grid", "grid-convergecast", "pairs", "nested", "mac"} {
		o := defaults()
		o.Topology = topo
		o.Model = "identity"
		if topo == "mac" {
			o.Model = "mac"
			o.Lambda = 0.2
		}
		if _, err := Build(o); err != nil {
			t.Fatalf("%s: %v", topo, err)
		}
	}
	o := defaults()
	o.Topology = "klein-bottle"
	if _, err := Build(o); err == nil {
		t.Fatal("unknown topology accepted")
	}
}

func TestBuildAdversaries(t *testing.T) {
	for _, adv := range []string{"burst", "spread", "sawtooth", "rotating"} {
		o := defaults()
		o.Adv = adv
		w, err := Build(o)
		if err != nil {
			t.Fatalf("%s: %v", adv, err)
		}
		if !strings.Contains(w.Process.Name(), "adversary") {
			t.Fatalf("%s: process is %s, not an adversary", adv, w.Process.Name())
		}
		if adv == "rotating" && !strings.Contains(w.Process.Name(), "rotating") {
			t.Fatalf("rotating flag ignored: %s", w.Process.Name())
		}
	}
	o := defaults()
	o.Adv = "quantum"
	if _, err := Build(o); err == nil {
		t.Fatal("unknown adversary accepted")
	}
}

func TestPickAlgorithm(t *testing.T) {
	names := []string{
		"full-parallel", "decay", "decay-adaptive", "spread", "densify",
		"trivial", "mac-decay", "rrw", "backoff", "greedy-pc",
	}
	for _, n := range names {
		alg, err := PickAlgorithm(n, "identity")
		if err != nil || alg == nil {
			t.Fatalf("%s: (%v, %v)", n, alg, err)
		}
	}
	if _, err := PickAlgorithm("nope", "identity"); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	// Auto resolution per model.
	autos := map[string]string{
		"identity":           "full-parallel",
		"mac":                "round-robin-withholding",
		"sinr-linear":        "spread",
		"sinr-power-control": "greedy-power-control",
	}
	for model, want := range autos {
		alg, err := PickAlgorithm("auto", model)
		if err != nil {
			t.Fatal(err)
		}
		if alg.Name() != want {
			t.Errorf("auto for %s = %s, want %s", model, alg.Name(), want)
		}
	}
}

func TestBuildWithLoss(t *testing.T) {
	o := defaults()
	o.LossP = 0.1
	w, err := Build(o)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(w.Model.Name(), "lossy") {
		t.Fatalf("loss option ignored: model %s", w.Model.Name())
	}
}

func TestBuildRejectsOverload(t *testing.T) {
	o := defaults()
	o.Lambda = 5 // far beyond FullParallel's throughput 1
	if _, err := Build(o); err == nil {
		t.Fatal("impossible provisioning accepted")
	}
}

func TestBuildFrameOverrideAndDelayAblation(t *testing.T) {
	o := defaults()
	o.Frame = 32
	o.Adv = "burst"
	o.DisableDelays = true
	w, err := Build(o)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Protocol.Sizing().T; got != 32 {
		t.Fatalf("frame override ignored: T=%d, want 32", got)
	}
	if got := w.Protocol.Sizing().DelayMax; got != 0 {
		t.Fatalf("delay ablation ignored: δmax=%d, want 0", got)
	}
}

func TestBuildGridConvergecastPaths(t *testing.T) {
	o := defaults()
	o.Topology = "grid-convergecast"
	o.Nodes = 9
	w, err := Build(o)
	if err != nil {
		t.Fatal(err)
	}
	// 3×3 grid: 8 non-sink nodes, one route each.
	if len(w.Paths) != 8 {
		t.Fatalf("got %d convergecast paths, want 8", len(w.Paths))
	}
	// The corner-to-corner route is 4 hops; M = max(|E|, D).
	maxHops := 0
	for _, p := range w.Paths {
		if len(p) > maxHops {
			maxHops = len(p)
		}
	}
	if maxHops != 4 {
		t.Fatalf("longest route %d hops, want 4", maxHops)
	}
}

func TestRegisterServerFlags(t *testing.T) {
	o := ServerOptions{Addr: ":8080", QueueDepth: 64}
	fs := flag.NewFlagSet("dynschedd", flag.ContinueOnError)
	RegisterServerFlags(fs, &o)
	err := fs.Parse([]string{
		"-addr", "127.0.0.1:9999", "-workers", "3", "-queue", "7",
		"-cache", "11", "-cache-dir", "/tmp/dd", "-progress-every", "500",
	})
	if err != nil {
		t.Fatal(err)
	}
	want := ServerOptions{
		Addr: "127.0.0.1:9999", Workers: 3, QueueDepth: 7,
		CacheEntries: 11, CacheDir: "/tmp/dd", ProgressEvery: 500,
	}
	if o != want {
		t.Fatalf("parsed options %+v, want %+v", o, want)
	}
	// Unset flags keep the caller's defaults.
	o2 := ServerOptions{Addr: ":8080", QueueDepth: 64}
	fs2 := flag.NewFlagSet("dynschedd", flag.ContinueOnError)
	RegisterServerFlags(fs2, &o2)
	if err := fs2.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if o2.Addr != ":8080" || o2.QueueDepth != 64 {
		t.Fatalf("defaults not preserved: %+v", o2)
	}
}
