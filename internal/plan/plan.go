// Package plan is the unified execution planner: it takes a list of
// addressable work units — each one independent, content-addressed, and
// a pure function of its own inputs — and drives them through one
// shared worker pool with per-unit context cancellation, per-unit
// cache short-circuiting, and serialized completion streaming.
//
// The package is deliberately generic: it knows nothing about
// scenarios, simulations, or caches. The root dynsched package
// decomposes a Scenario into units (single run, replications, sweep
// and grid points) and aggregates the typed results; internal/server
// plugs its content-addressed result cache into the Lookup/OnUnit
// hooks. Everything execution-shaped — pool sizing, cancellation,
// deterministic error selection, done/cached accounting — lives here
// exactly once.
//
// Determinism contract (inherited from internal/sim's pool): every
// unit derives all of its randomness from its own inputs and writes
// only its own slot of the outcome, so the recorded values are
// bit-identical for every pool size. Only completion *order* (and so
// the OnUnit stream order) varies with parallelism; the Outcome is
// indexed, not ordered.
package plan

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dynsched/internal/sim"
)

// Unit is one addressable work item of a plan: a stable index into the
// outcome, a content-address key (the caller's canonical hash of the
// fully-resolved work), and a human-readable label for streams and
// logs.
type Unit struct {
	Index int
	Key   string
	Label string
}

// Progress is the plan-level completion state handed to OnUnit.
type Progress struct {
	// Done counts completed units, cache hits included.
	Done int
	// Cached counts the units served by Lookup rather than run.
	Cached int
	// Total is the plan's unit count.
	Total int
}

// Options parameterises Execute.
type Options[T any] struct {
	// Parallel caps the worker pool (0 = GOMAXPROCS, 1 = serial inline).
	Parallel int
	// Lookup, when set, is consulted once per unit before anything runs;
	// ok = true short-circuits the unit with the returned value. It is
	// called serially in unit order.
	Lookup func(u Unit) (T, bool)
	// OnUnit, when set, streams each unit's completion: cache hits first
	// (in unit order), then runs in completion order. Calls are
	// serialized and carry monotonic Progress counts; keep the callback
	// cheap — it runs under the executor's accounting lock.
	OnUnit func(u Unit, value T, cached bool, err error, p Progress)
	// Metrics, when set, records every unit's outcome (run, cached,
	// failed) and fresh-run wall time into the bundle's instruments.
	Metrics *Metrics

	// Delegate, when set, may execute a unit outside the local pool —
	// dynschedd's coordinator hands units to its remote runner fleet
	// through this hook. It is called from a pool worker before local
	// execution and must do exactly one of two things:
	//
	//   - execute the unit elsewhere and return (value, true, err) —
	//     the worker records the outcome without running fn; or
	//   - receive one token from local (the local-execution semaphore)
	//     and return (zero, false, nil) — the worker runs fn on this
	//     goroutine and puts the token back afterwards.
	//
	// The token protocol is what lets a hybrid coordinator overlap
	// local and remote execution without oversubscribing its own CPUs:
	// Parallel bounds total in-flight units (local + delegated), while
	// the semaphore bounds how many of them execute locally. A
	// delegate that parks a unit for a remote runner should keep
	// selecting on local so the unit can fall back to an idle local
	// slot while it waits. Cancellation is reported as
	// (zero, true, ctx.Err()).
	Delegate func(ctx context.Context, u Unit, local chan struct{}) (T, bool, error)
	// LocalParallel sizes the local-execution semaphore when Delegate
	// is set: 0 means Parallel's resolved value, negative means no
	// local execution at all (a dispatch-only coordinator — every unit
	// must complete through Delegate). Ignored without Delegate.
	LocalParallel int
}

// Outcome records every unit's fate, indexed by Unit.Index. Values may
// be set even for failed units (a cancelled simulation returns its
// partial result alongside the error); Done marks the units that
// completed cleanly.
type Outcome[T any] struct {
	Values []T
	Done   []bool
	Cached []bool
	Errs   []error

	NumDone   int
	NumCached int
}

// UnitError attributes an execution error to the unit that produced
// it. errors.Is/As reach through to the underlying error.
type UnitError struct {
	Unit Unit
	Err  error
}

// Error formats the failure with its unit label.
func (e *UnitError) Error() string {
	return fmt.Sprintf("unit %d (%s): %v", e.Unit.Index, e.Unit.Label, e.Err)
}

// Unwrap exposes the underlying error.
func (e *UnitError) Unwrap() error { return e.Err }

// IsCancellation reports whether err stems from context cancellation
// or deadline expiry rather than a genuine unit failure.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Execute runs every unit on a worker pool of opts.Parallel goroutines:
// first a serial cache pass over opts.Lookup, then the remaining units
// through the pool, each under its own context derived from ctx. A nil
// ctx means context.Background().
//
// The returned error is the first (by unit index) non-cancellation
// unit error, wrapped in *UnitError; if every unit error is a
// cancellation, it is ctx.Err() when ctx was cancelled, else nil. The
// Outcome is always returned — a cancelled plan reports the units that
// completed before the cut.
func Execute[T any](ctx context.Context, units []Unit, opts Options[T], run func(ctx context.Context, u Unit) (T, error)) (*Outcome[T], error) {
	if ctx == nil {
		ctx = context.Background()
	}
	n := len(units)
	out := &Outcome[T]{
		Values: make([]T, n),
		Done:   make([]bool, n),
		Cached: make([]bool, n),
		Errs:   make([]error, n),
	}

	var mu sync.Mutex
	finish := func(i int, v T, cached bool, err error) {
		mu.Lock()
		defer mu.Unlock()
		out.Values[i] = v
		out.Errs[i] = err
		if err == nil {
			out.Done[i] = true
			out.NumDone++
			if cached {
				out.Cached[i] = true
				out.NumCached++
			}
		}
		if opts.OnUnit != nil {
			opts.OnUnit(units[i], v, cached, err, Progress{Done: out.NumDone, Cached: out.NumCached, Total: n})
		}
	}

	// Cache pass: serve what Lookup already holds, in unit order, so a
	// resubmitted plan with one new unit runs exactly that unit.
	pending := make([]int, 0, n)
	for i := range units {
		if ctx.Err() != nil {
			break
		}
		if opts.Lookup != nil {
			if v, ok := opts.Lookup(units[i]); ok {
				opts.Metrics.observeCached()
				finish(i, v, true, nil)
				continue
			}
		}
		pending = append(pending, i)
	}

	// The local-execution semaphore (Delegate only): Parallel bounds
	// total in-flight units, these tokens bound how many run fn locally.
	var localSem chan struct{}
	if opts.Delegate != nil {
		lp := opts.LocalParallel
		if lp == 0 {
			if lp = opts.Parallel; lp <= 0 {
				lp = runtime.GOMAXPROCS(0)
			}
		}
		if lp < 0 {
			lp = 0 // dispatch-only: no tokens, units only complete remotely
		}
		localSem = make(chan struct{}, lp+1) // +1 headroom for a token bounced back mid-race
		for t := 0; t < lp; t++ {
			localSem <- struct{}{}
		}
	}

	sim.ForEachCtx(ctx, len(pending), opts.Parallel, func(k int) {
		i := pending[k]
		// A per-unit context: cancelling the plan context cancels every
		// in-flight unit, and a unit's own resources are released as soon
		// as it returns.
		uctx, cancel := context.WithCancel(ctx)
		if opts.Delegate != nil {
			started := time.Now()
			v, ok, err := opts.Delegate(uctx, units[i], localSem)
			if ok {
				cancel()
				opts.Metrics.observeDelegated(time.Since(started), err)
				finish(i, v, false, err)
				return
			}
			// The delegate took a local token; run here and return it.
			defer func() { localSem <- struct{}{} }()
		}
		started := time.Now()
		v, err := run(uctx, units[i])
		cancel()
		opts.Metrics.observeRun(time.Since(started), err)
		finish(i, v, false, err)
	})

	for i := range units {
		if err := out.Errs[i]; err != nil && !IsCancellation(err) {
			return out, &UnitError{Unit: units[i], Err: err}
		}
	}
	if err := ctx.Err(); err != nil {
		return out, err
	}
	return out, nil
}
