package plan

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func mkUnits(n int) []Unit {
	units := make([]Unit, n)
	for i := range units {
		units[i] = Unit{Index: i, Key: fmt.Sprintf("key-%d", i), Label: fmt.Sprintf("unit %d", i)}
	}
	return units
}

// TestExecuteBitIdenticalAcrossPoolSizes pins the determinism contract:
// the recorded values are identical for every worker count.
func TestExecuteBitIdenticalAcrossPoolSizes(t *testing.T) {
	units := mkUnits(37)
	run := func(_ context.Context, u Unit) (int, error) { return u.Index * u.Index, nil }
	var want []int
	for _, parallel := range []int{1, 2, 4, 0} {
		out, err := Execute(context.Background(), units, Options[int]{Parallel: parallel}, run)
		if err != nil {
			t.Fatal(err)
		}
		if out.NumDone != len(units) || out.NumCached != 0 {
			t.Fatalf("parallel=%d: done=%d cached=%d", parallel, out.NumDone, out.NumCached)
		}
		if want == nil {
			want = out.Values
			continue
		}
		for i := range want {
			if out.Values[i] != want[i] {
				t.Fatalf("parallel=%d: value[%d]=%d, want %d", parallel, i, out.Values[i], want[i])
			}
		}
	}
}

// TestExecuteLookupShortCircuit: cached units are served without
// running, and only the misses reach the pool.
func TestExecuteLookupShortCircuit(t *testing.T) {
	units := mkUnits(8)
	var ran atomic.Int64
	out, err := Execute(context.Background(), units, Options[int]{
		Parallel: 4,
		Lookup: func(u Unit) (int, bool) {
			if u.Index%2 == 0 {
				return -u.Index, true
			}
			return 0, false
		},
	}, func(_ context.Context, u Unit) (int, error) {
		ran.Add(1)
		return u.Index, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ran.Load(); got != 4 {
		t.Fatalf("ran %d units, want 4", got)
	}
	if out.NumCached != 4 || out.NumDone != 8 {
		t.Fatalf("cached=%d done=%d", out.NumCached, out.NumDone)
	}
	for i := range units {
		wantCached := i%2 == 0
		if out.Cached[i] != wantCached {
			t.Fatalf("unit %d cached=%v", i, out.Cached[i])
		}
		want := i
		if wantCached {
			want = -i
		}
		if out.Values[i] != want {
			t.Fatalf("unit %d value=%d want %d", i, out.Values[i], want)
		}
	}
}

// TestExecuteOnUnitOrdered: the completion stream carries monotonically
// increasing Done counts, cache hits arrive first in unit order, and
// the final Progress covers the whole plan.
func TestExecuteOnUnitOrdered(t *testing.T) {
	units := mkUnits(16)
	var stream []Progress
	var cachedSeen []int
	out, err := Execute(context.Background(), units, Options[int]{
		Parallel: 4,
		Lookup: func(u Unit) (int, bool) {
			return 0, u.Index < 3
		},
		OnUnit: func(u Unit, _ int, cached bool, err error, p Progress) {
			if err != nil {
				t.Errorf("unit %d errored: %v", u.Index, err)
			}
			if cached {
				cachedSeen = append(cachedSeen, u.Index)
			}
			stream = append(stream, p)
		},
	}, func(_ context.Context, u Unit) (int, error) { return u.Index, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(stream) != 16 {
		t.Fatalf("streamed %d completions", len(stream))
	}
	for i, p := range stream {
		if p.Done != i+1 || p.Total != 16 {
			t.Fatalf("completion %d reported %+v", i, p)
		}
	}
	if fmt.Sprint(cachedSeen) != "[0 1 2]" {
		t.Fatalf("cache hits streamed as %v", cachedSeen)
	}
	if last := stream[len(stream)-1]; last.Cached != 3 {
		t.Fatalf("final progress %+v", last)
	}
	if out.NumDone != 16 || out.NumCached != 3 {
		t.Fatalf("outcome done=%d cached=%d", out.NumDone, out.NumCached)
	}
}

// TestExecuteFirstErrorByIndex: the reported error is the lowest-index
// real failure, wrapped in *UnitError, regardless of completion order.
func TestExecuteFirstErrorByIndex(t *testing.T) {
	units := mkUnits(10)
	boom := errors.New("boom")
	_, err := Execute(context.Background(), units, Options[int]{Parallel: 4}, func(_ context.Context, u Unit) (int, error) {
		if u.Index == 3 || u.Index == 7 {
			return 0, fmt.Errorf("unit-%d: %w", u.Index, boom)
		}
		return u.Index, nil
	})
	var ue *UnitError
	if !errors.As(err, &ue) {
		t.Fatalf("error %v is not a UnitError", err)
	}
	if ue.Unit.Index != 3 {
		t.Fatalf("reported unit %d, want 3", ue.Unit.Index)
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error chain lost the cause: %v", err)
	}
}

// TestExecuteCancellation: a cancelled plan reports the completed
// subset and the context error, and in-flight units see their derived
// contexts cancelled.
func TestExecuteCancellation(t *testing.T) {
	units := mkUnits(64)
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int64
	out, err := Execute(ctx, units, Options[int]{Parallel: 2}, func(uctx context.Context, u Unit) (int, error) {
		if u.Index == 0 {
			cancel()
		}
		if n := done.Add(1); n > 8 {
			// The pool must stop claiming units long before the end.
			t.Errorf("unit %d still ran after cancellation", u.Index)
		}
		return u.Index, uctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v, want context.Canceled", err)
	}
	if out.NumDone >= len(units) {
		t.Fatal("cancelled plan claims full completion")
	}
	for i := range units {
		if out.Done[i] && out.Errs[i] != nil {
			t.Fatalf("unit %d both done and errored", i)
		}
	}
}

// TestExecutePreCancelled: a context cancelled before Execute runs
// nothing and reports it.
func TestExecutePreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := Execute(ctx, mkUnits(5), Options[int]{
		Lookup: func(Unit) (int, bool) { t.Error("lookup ran after cancellation"); return 0, false },
	}, func(_ context.Context, u Unit) (int, error) {
		t.Errorf("unit %d ran after cancellation", u.Index)
		return 0, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v", err)
	}
	if out.NumDone != 0 {
		t.Fatalf("done=%d", out.NumDone)
	}
}

// TestExecuteEmpty: an empty plan succeeds vacuously.
func TestExecuteEmpty(t *testing.T) {
	out, err := Execute(context.Background(), nil, Options[int]{}, func(_ context.Context, u Unit) (int, error) {
		return 0, nil
	})
	if err != nil || out.NumDone != 0 {
		t.Fatalf("out=%+v err=%v", out, err)
	}
}

// TestExecutePartialValueOnError: a unit that returns a value alongside
// its error (a cancelled simulation's partial result) has the value
// recorded without being counted done.
func TestExecutePartialValueOnError(t *testing.T) {
	units := mkUnits(1)
	out, _ := Execute(context.Background(), units, Options[int]{Parallel: 1}, func(_ context.Context, u Unit) (int, error) {
		return 42, errors.New("partial")
	})
	if out.Values[0] != 42 || out.Done[0] {
		t.Fatalf("outcome %+v", out)
	}
}
