package plan

import (
	"time"

	"dynsched/internal/metrics"
)

// Metrics is the planner's instrument bundle: how many units ran
// fresh, were served from the cache, or failed, and the wall time of
// the fresh runs. One bundle serves every plan executed through the
// same Options wiring (dynschedd shares one across all jobs).
type Metrics struct {
	UnitsRun    *metrics.Counter
	UnitsCached *metrics.Counter
	UnitsFailed *metrics.Counter
	// UnitsDelegated counts units completed through Options.Delegate —
	// executed by a remote runner rather than the local pool. Their
	// wall time (queueing and network included) is deliberately kept
	// out of UnitSeconds, which measures local execution cost only: a
	// runner's batch controller sizes leases from its own histogram.
	UnitsDelegated *metrics.Counter
	UnitSeconds    *metrics.Histogram
}

// unitSecondsBuckets spans 1ms to ~17min: CI-scale units finish in
// milliseconds, full-length sweep units in seconds to minutes.
var unitSecondsBuckets = metrics.ExpBuckets(0.001, 2, 20)

// NewMetrics registers the planner instruments on r (idempotent).
func NewMetrics(r *metrics.Registry) *Metrics {
	return &Metrics{
		UnitsRun:       r.CounterVec("dynsched_plan_units_total", "Plan units by outcome: run fresh, served from cache, or failed.", "outcome").With("run"),
		UnitsCached:    r.CounterVec("dynsched_plan_units_total", "Plan units by outcome: run fresh, served from cache, or failed.", "outcome").With("cached"),
		UnitsFailed:    r.CounterVec("dynsched_plan_units_total", "Plan units by outcome: run fresh, served from cache, or failed.", "outcome").With("failed"),
		UnitsDelegated: r.CounterVec("dynsched_plan_units_total", "Plan units by outcome: run fresh, served from cache, or failed.", "outcome").With("delegated"),
		UnitSeconds:    r.Histogram("dynsched_plan_unit_seconds", "Wall time of freshly-executed plan units (cache hits excluded).", unitSecondsBuckets),
	}
}

// observeDelegated records one unit completed by a remote runner (or
// its failure — remote failures count like local ones).
func (m *Metrics) observeDelegated(_ time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.UnitsFailed.Inc()
		return
	}
	m.UnitsDelegated.Inc()
}

// observeCached records one cache-served unit.
func (m *Metrics) observeCached() {
	if m == nil {
		return
	}
	m.UnitsCached.Inc()
}

// observeRun records one freshly-executed unit and its wall time.
func (m *Metrics) observeRun(d time.Duration, err error) {
	if m == nil {
		return
	}
	if err != nil {
		m.UnitsFailed.Inc()
		return
	}
	m.UnitsRun.Inc()
	m.UnitSeconds.Observe(d.Seconds())
}
