package journal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func collect(t *testing.T, dir string) ([]string, ReplayStats) {
	t.Helper()
	var got []string
	rs, err := Replay(dir, func(p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, rs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"alpha", "", "gamma with spaces", string(make([]byte, 4096))}
	for i, p := range want {
		if err := j.Append([]byte(p), i%2 == 0); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	got, rs := collect(t, dir)
	if len(got) != len(want) || rs.Torn {
		t.Fatalf("replayed %d records (torn=%v), want %d", len(got), rs.Torn, len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch", i)
		}
	}
	st := j.Stats()
	if st.Records != int64(len(want)) || st.Segments != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	j, err := Open(dir, 64) // tiny segments force rotation
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for i := 0; i < 20; i++ {
		p := fmt.Sprintf("record-%02d-%s", i, string(make([]byte, 16)))
		want = append(want, p)
		if err := j.Append([]byte(p), false); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()

	// Reopen starts a fresh segment; appends continue the record
	// stream across the restart.
	j2, err := Open(dir, 64)
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, "after-restart")
	if err := j2.Append([]byte("after-restart"), true); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	got, rs := collect(t, dir)
	if rs.Segments < 3 {
		t.Fatalf("expected rotation to produce multiple segments, got %d", rs.Segments)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d mismatch after rotation", i)
		}
	}
}

// A truncated final record — the torn write of a crashed process — is
// detected via framing/CRC and dropped; earlier records survive.
func TestTornTailDropped(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, 0)
	j.Append([]byte("one"), true)
	j.Append([]byte("two"), true)
	j.Append([]byte("three-will-be-torn"), true)
	j.Close()

	segs, _ := segments(dir)
	fi, _ := os.Stat(segs[0].path)
	if err := Truncate(dir, fi.Size()-5); err != nil {
		t.Fatal(err)
	}

	got, rs := collect(t, dir)
	if !rs.Torn {
		t.Fatal("expected Torn flag")
	}
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("got %q, want the two intact records", got)
	}

	// A torn tail must stay tolerated even after the next process
	// opens (and rotates to) a new segment — the torn segment is then
	// no longer the newest file.
	j2, err := Open(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	j2.Append([]byte("four"), true)
	j2.Close()
	got, rs = collect(t, dir)
	if !rs.Torn || len(got) != 3 || got[2] != "four" {
		t.Fatalf("after reopen: torn=%v got=%q", rs.Torn, got)
	}
}

// Flipping bytes inside a record that has valid data after it is real
// corruption, not a torn write: replay must refuse.
func TestMidStreamCorruptionFatal(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, 0)
	j.Append([]byte("first-record-payload"), true)
	j.Append([]byte("second-record-payload"), true)
	j.Close()

	segs, _ := segments(dir)
	data, _ := os.ReadFile(segs[0].path)
	data[headerBytes+3] ^= 0xFF // corrupt the first payload in place
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	_, err := Replay(dir, func([]byte) error { return nil })
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestPruneKeepsCurrentSegment(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, 0)
	j.Append([]byte("old"), true)
	j.Close()

	j2, _ := Open(dir, 0)
	j2.Append([]byte("snapshot"), true)
	if err := j2.Prune(); err != nil {
		t.Fatal(err)
	}
	j2.Close()

	got, rs := collect(t, dir)
	if rs.Segments != 1 || len(got) != 1 || got[0] != "snapshot" {
		t.Fatalf("after prune: segments=%d got=%q", rs.Segments, got)
	}
}

func TestReplayMissingDir(t *testing.T) {
	rs, err := Replay(filepath.Join(t.TempDir(), "nope"), func([]byte) error { return nil })
	if err != nil || rs.Records != 0 {
		t.Fatalf("missing dir: %v %+v", err, rs)
	}
}

func TestReplayCallbackErrorAborts(t *testing.T) {
	dir := t.TempDir()
	j, _ := Open(dir, 0)
	j.Append([]byte("a"), true)
	j.Append([]byte("b"), true)
	j.Close()
	boom := errors.New("boom")
	n := 0
	_, err := Replay(dir, func([]byte) error { n++; return boom })
	if !errors.Is(err, boom) || n != 1 {
		t.Fatalf("err=%v n=%d", err, n)
	}
}
