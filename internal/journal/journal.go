// Package journal is an append-only, CRC-checked record log backing
// dynschedd's durable job table. The server appends one opaque payload
// per job lifecycle event (submit, unit done, finish, shutdown); on
// restart it replays every record in order to rebuild the job table
// and resubmit incomplete work.
//
// Layout: the journal is a directory of numbered segment files
// (journal-00000001.log, ...). Each record is framed as
//
//	[4-byte little-endian payload length][4-byte IEEE CRC32][payload]
//
// Appends go to the newest segment and rotate to a fresh file past a
// size threshold; every Open starts a new segment so a torn tail from
// a crash is never appended to. Replay reads segments in order and is
// torn-tail tolerant: a record that frames incompletely or checksums
// badly at the very end of a segment is the interrupted last write of
// a crashed process (crashes only ever tear tails, and rotation means
// the torn segment may no longer be the newest file by the time it is
// replayed) — it is dropped and replay succeeds (flagged Torn). A
// checksum failure with intact data after it cannot be a torn write
// and is reported as ErrCorrupt.
//
// Compaction is snapshot-rewrite: after replay the server appends a
// fresh snapshot of still-live jobs to the new segment and calls
// Prune, which deletes every older segment.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

const (
	segmentPrefix = "journal-"
	segmentSuffix = ".log"
	headerBytes   = 8 // 4-byte length + 4-byte CRC32

	// maxRecordBytes guards replay against absurd allocations when the
	// length prefix itself is corrupt.
	maxRecordBytes = 16 << 20

	// DefaultSegmentBytes is the rotation threshold for a segment file.
	DefaultSegmentBytes = 4 << 20
)

// ErrCorrupt reports a mid-segment checksum failure — a record whose
// bytes are all present but wrong, with valid data after it. Unlike a
// torn tail this cannot be explained by an interrupted append, so
// replay refuses to guess.
var ErrCorrupt = errors.New("journal: corrupt record")

// Journal is an open, appendable journal directory. Methods are safe
// for concurrent use.
type Journal struct {
	dir      string
	segBytes int64

	mu      sync.Mutex
	f       *os.File
	seq     uint64
	size    int64
	records int64
	bytes   int64
	closed  bool
}

// Stats are observability gauges for /healthz.
type Stats struct {
	// Segments is the number of segment files currently on disk.
	Segments int `json:"segments"`
	// Records and Bytes count appends since this process opened the
	// journal (replayed history is not re-counted).
	Records int64 `json:"records"`
	Bytes   int64 `json:"bytes"`
}

// Open creates dir if needed and opens the journal for appending.
// A fresh segment is always started: past crashes may have torn the
// previous tail, and never appending after a torn record keeps the
// "torn implies final" replay invariant. segBytes <= 0 uses
// DefaultSegmentBytes.
func Open(dir string, segBytes int64) (*Journal, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("journal: %w", err)
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	next := uint64(1)
	if n := len(segs); n > 0 {
		next = segs[n-1].seq + 1
	}
	j := &Journal{dir: dir, segBytes: segBytes, seq: next}
	if err := j.openSegment(next); err != nil {
		return nil, err
	}
	return j, nil
}

func (j *Journal) openSegment(seq uint64) error {
	f, err := os.OpenFile(segmentPath(j.dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if j.f != nil {
		j.f.Sync()
		j.f.Close()
	}
	j.f, j.seq, j.size = f, seq, 0
	return nil
}

// Append writes one record. When sync is true the segment is fsync'd
// before returning — the record survives a crash. Unsynced appends
// reach the OS immediately but rely on the next Sync (or the kernel)
// for durability; use them for high-rate observability records whose
// loss is recoverable by other means.
func (j *Journal) Append(payload []byte, sync bool) error {
	if int64(len(payload)) > maxRecordBytes {
		return fmt.Errorf("journal: record too large (%d bytes)", len(payload))
	}
	buf := make([]byte, headerBytes+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[headerBytes:], payload)

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("journal: closed")
	}
	if j.size+int64(len(buf)) > j.segBytes && j.size > 0 {
		if err := j.openSegment(j.seq + 1); err != nil {
			return err
		}
	}
	if _, err := j.f.Write(buf); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.size += int64(len(buf))
	j.records++
	j.bytes += int64(len(buf))
	if sync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	return nil
}

// Sync flushes the current segment to stable storage.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Prune deletes every segment older than the one currently being
// appended to. Called after the replay-then-snapshot sequence at
// startup: the new segment holds a full snapshot of live jobs, so the
// history it was derived from is dead weight.
func (j *Journal) Prune() error {
	j.mu.Lock()
	cur := j.seq
	j.mu.Unlock()
	segs, err := segments(j.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s.seq < cur {
			if err := os.Remove(s.path); err != nil {
				return fmt.Errorf("journal: %w", err)
			}
		}
	}
	return nil
}

// Stats reports current gauges.
func (j *Journal) Stats() Stats {
	segs, _ := segments(j.dir)
	j.mu.Lock()
	defer j.mu.Unlock()
	return Stats{Segments: len(segs), Records: j.records, Bytes: j.bytes}
}

// Close syncs and closes the current segment.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	if j.f == nil {
		return nil
	}
	j.f.Sync()
	return j.f.Close()
}

// ReplayStats summarises a Replay pass.
type ReplayStats struct {
	Segments int
	Records  int64
	// Torn reports that the final segment ended in a partial or
	// checksum-failed record (an interrupted write), which was dropped.
	Torn bool
}

// Replay reads every record in dir in append order and hands each
// payload to fn. A missing directory replays zero records. Torn
// segment tails are dropped (Torn=true); a checksum failure with
// valid data after it returns ErrCorrupt. fn returning an error
// aborts the replay.
func Replay(dir string, fn func(payload []byte) error) (ReplayStats, error) {
	var rs ReplayStats
	segs, err := segments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return rs, nil
		}
		return rs, err
	}
	rs.Segments = len(segs)
	for _, s := range segs {
		n, torn, err := replaySegment(s.path, fn)
		rs.Records += n
		if err != nil {
			return rs, err
		}
		if torn {
			rs.Torn = true
		}
	}
	return rs, nil
}

func replaySegment(path string, fn func([]byte) error) (int64, bool, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, false, fmt.Errorf("journal: %w", err)
	}
	var n int64
	off := 0
	for off < len(data) {
		rec, next, verdict := frame(data, off)
		switch verdict {
		case frameTorn:
			return n, true, nil
		case frameCorrupt:
			return n, false, fmt.Errorf("%w: %s at offset %d", ErrCorrupt, filepath.Base(path), off)
		}
		if err := fn(rec); err != nil {
			return n, false, err
		}
		n++
		off = next
	}
	return n, false, nil
}

const (
	frameOK = iota
	// frameTorn: the record is incomplete (header or payload runs past
	// the end of the segment, or the length field is garbage) or the
	// last record's checksum fails — the signature of an interrupted
	// append. The rest of the segment is dropped.
	frameTorn
	// frameCorrupt: a fully-present record fails its checksum with
	// valid data after it — not explicable as a torn write.
	frameCorrupt
)

// frame decodes one record at off, returning the payload, the offset
// of the next record, and a verdict.
func frame(data []byte, off int) ([]byte, int, int) {
	if off+headerBytes > len(data) {
		return nil, 0, frameTorn
	}
	length := int(binary.LittleEndian.Uint32(data[off : off+4]))
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	if length > maxRecordBytes || off+headerBytes+length > len(data) {
		return nil, 0, frameTorn
	}
	next := off + headerBytes + length
	payload := data[off+headerBytes : next]
	if crc32.ChecksumIEEE(payload) != sum {
		if next == len(data) {
			return nil, 0, frameTorn
		}
		return nil, 0, frameCorrupt
	}
	return payload, next, frameOK
}

type segment struct {
	seq  uint64
	path string
}

func segments(dir string) ([]segment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range ents {
		name := e.Name()
		if !strings.HasPrefix(name, segmentPrefix) || !strings.HasSuffix(name, segmentSuffix) {
			continue
		}
		seqStr := strings.TrimSuffix(strings.TrimPrefix(name, segmentPrefix), segmentSuffix)
		seq, err := strconv.ParseUint(seqStr, 10, 64)
		if err != nil {
			continue
		}
		segs = append(segs, segment{seq: seq, path: filepath.Join(dir, name)})
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].seq < segs[k].seq })
	return segs, nil
}

func segmentPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%08d%s", segmentPrefix, seq, segmentSuffix))
}

// Truncate is a test hook: chop the final segment in dir to length n,
// simulating a torn write. Exposed here (rather than in _test files)
// so the server's crash-recovery tests can reuse it.
func Truncate(dir string, n int64) error {
	segs, err := segments(dir)
	if err != nil {
		return err
	}
	if len(segs) == 0 {
		return io.ErrUnexpectedEOF
	}
	return os.Truncate(segs[len(segs)-1].path, n)
}
