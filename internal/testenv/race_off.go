//go:build !race

package testenv

// RaceEnabled reports whether the binary was built with -race.
const RaceEnabled = false
