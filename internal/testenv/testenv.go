// Package testenv holds small helpers shared by the repo's tests.
package testenv

import "testing"

// SkipIfRace skips allocation-count assertions under the race detector,
// whose instrumentation perturbs the allocation behavior being pinned.
func SkipIfRace(t *testing.T) {
	t.Helper()
	if RaceEnabled {
		t.Skip("allocation counts are not stable under -race")
	}
}
