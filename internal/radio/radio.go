// Package radio implements the radio-network (broadcast) interference
// model the paper lists in Section 7.2: a node receives a transmission
// exactly when precisely one of its in-range neighbours transmits — two
// simultaneous transmissions in range collide at the receiver, and a
// transmitting node cannot receive. On disk graphs the derived conflict
// graph has constant inductive independence, so the paper's framework
// yields O(log m)-competitive protocols here.
package radio

import (
	"dynsched/internal/conflict"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// Model is the radio-network model over a communication graph: the
// graph's links define who can hear whom (link u→v means v hears u).
type Model struct {
	g *netgraph.Graph
	// hears[v] lists the nodes v can hear (senders of links into v).
	hears [][]netgraph.NodeID
	// cm is the derived conflict-graph model used for the W matrix.
	cm *conflict.Model
}

var _ interference.Model = (*Model)(nil)

// New builds the radio model on g, deriving the conflict graph (two
// links conflict when they cannot be served in the same slot) and its
// degeneracy-order W matrix.
func New(g *netgraph.Graph) (*Model, error) {
	m := &Model{g: g, hears: make([][]netgraph.NodeID, g.NumNodes())}
	for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
		for _, id := range g.In(v) {
			m.hears[v] = append(m.hears[v], g.Link(id).From)
		}
	}
	cg := conflict.NewGraph(g.NumLinks())
	links := g.Links()
	for i := range links {
		for j := i + 1; j < len(links); j++ {
			if m.linksConflict(links[i], links[j]) {
				if err := cg.AddConflict(int(links[i].ID), int(links[j].ID)); err != nil {
					return nil, err
				}
			}
		}
	}
	cm, err := conflict.NewModel(cg, nil)
	if err != nil {
		return nil, err
	}
	m.cm = cm
	return m, nil
}

// linksConflict reports whether two links cannot succeed simultaneously
// under radio semantics.
func (m *Model) linksConflict(a, b netgraph.Link) bool {
	// Same sender or same receiver, or one's sender is the other's
	// receiver (a node cannot transmit and receive at once).
	if a.From == b.From || a.To == b.To || a.From == b.To || a.To == b.From {
		return true
	}
	// b's sender is audible at a's receiver → collision at a.To.
	if m.canHear(a.To, b.From) {
		return true
	}
	// a's sender is audible at b's receiver → collision at b.To.
	return m.canHear(b.To, a.From)
}

func (m *Model) canHear(listener, speaker netgraph.NodeID) bool {
	for _, s := range m.hears[listener] {
		if s == speaker {
			return true
		}
	}
	return false
}

// Name implements interference.Model.
func (m *Model) Name() string { return "radio-network" }

// NumLinks implements interference.Model.
func (m *Model) NumLinks() int { return m.g.NumLinks() }

// Weight implements interference.Model via the derived conflict matrix.
func (m *Model) Weight(e, e2 int) float64 { return m.cm.Weight(e, e2) }

// WeightRows implements interference.RowsProvider via the derived
// conflict matrix's CSR form.
func (m *Model) WeightRows() *interference.Sparse { return m.cm.WeightRows() }

// ConflictGraph exposes the derived conflict structure.
func (m *Model) ConflictGraph() *conflict.Graph { return m.cm.ConflictGraph() }

// Successes implements interference.Model with exact radio semantics: a
// transmission u→v is received iff u transmits exactly one packet, v
// hears exactly one transmitting node, v itself is silent, and the link
// carries one packet.
func (m *Model) Successes(tx []int) []bool {
	out := make([]bool, len(tx))
	if len(tx) == 0 {
		return out
	}
	counts := make([]int, m.g.NumLinks())
	senderLoad := make(map[netgraph.NodeID]int) // packets per transmitting node
	for _, e := range tx {
		counts[e]++
		senderLoad[m.g.Link(netgraph.LinkID(e)).From]++
	}
	for i, e := range tx {
		if counts[e] != 1 {
			continue
		}
		l := m.g.Link(netgraph.LinkID(e))
		if senderLoad[l.From] != 1 {
			continue // one radio cannot send two packets at once
		}
		if senderLoad[l.To] > 0 {
			continue // the receiver is busy transmitting
		}
		audible := 0
		for _, s := range m.hears[l.To] {
			if senderLoad[s] > 0 {
				audible++
			}
		}
		out[i] = audible == 1 // exactly the intended sender
	}
	return out
}
