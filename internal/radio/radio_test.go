package radio

import (
	"math/rand"
	"testing"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/static"
)

func TestRadioSemanticsOnLine(t *testing.T) {
	// 0 → 1 → 2 → 3 line; radio links both directions.
	g := netgraph.LineNetwork(4, 1)
	m, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	if err := interference.ValidateWeights(m); err != nil {
		t.Fatal(err)
	}
	l01, _ := g.FindLink(0, 1)
	l12, _ := g.FindLink(1, 2)
	l23, _ := g.FindLink(2, 3)
	l32, _ := g.FindLink(3, 2)

	// A lone transmission succeeds.
	if s := m.Successes([]int{int(l01)}); !s[0] {
		t.Error("lone radio transmission failed")
	}
	// 0→1 and 2→3: node 2's transmission is audible at 1? Node 1 hears
	// {0, 2}; both 0 and 2 transmit → collision at 1, link 2→3 has
	// receiver 3 hearing only {2} → succeeds.
	s := m.Successes([]int{int(l01), int(l23)})
	if s[0] {
		t.Error("0→1 should collide (receiver 1 also hears 2)")
	}
	if !s[1] {
		t.Error("2→3 should succeed (receiver 3 hears only 2)")
	}
	// 0→1 and 1→2: node 1 cannot transmit and receive at once.
	s = m.Successes([]int{int(l01), int(l12)})
	if s[0] {
		t.Error("0→1 should fail while 1 transmits")
	}
	// 1→2 alone while 3→2 also fires: two audible senders at 2.
	s = m.Successes([]int{int(l12), int(l32)})
	if s[0] || s[1] {
		t.Error("colliding transmissions at node 2 succeeded")
	}
}

func TestRadioDuplicatesFail(t *testing.T) {
	g := netgraph.LineNetwork(3, 1)
	m, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	l01, _ := g.FindLink(0, 1)
	s := m.Successes([]int{int(l01), int(l01)})
	if s[0] || s[1] {
		t.Error("duplicate radio attempts succeeded")
	}
}

func TestRadioConflictGraphConsistent(t *testing.T) {
	// Whenever two links conflict per the derived graph, transmitting
	// them together must fail at least one of them; when they do not
	// conflict, both must succeed together.
	rng := rand.New(rand.NewSource(321))
	g := netgraph.RandomGeometric(rng, 12, 10, 4)
	if g.NumLinks() < 4 {
		t.Skip("degenerate random graph")
	}
	m, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	cg := m.ConflictGraph()
	n := g.NumLinks()
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			s := m.Successes([]int{a, b})
			bothOK := s[0] && s[1]
			if cg.Conflicts(a, b) && bothOK {
				t.Fatalf("links %d,%d conflict per graph but both succeeded", a, b)
			}
			if !cg.Conflicts(a, b) && !bothOK {
				t.Fatalf("links %d,%d independent per graph but failed together", a, b)
			}
		}
	}
}

func TestRadioSchedulableByDecay(t *testing.T) {
	// The Theorem 19 algorithm must clear a batch under radio semantics.
	g := netgraph.GridNetwork(3, 3, 1)
	m, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	var reqs []static.Request
	for e := 0; e < g.NumLinks(); e++ {
		for k := 0; k < 3; k++ {
			reqs = append(reqs, static.Request{Link: e, Tag: int64(e*10 + k)})
		}
	}
	rng := rand.New(rand.NewSource(322))
	meas := static.RequestMeasure(m, reqs)
	res := static.Run(rng, m, static.Decay{}, reqs, 64*static.Decay{}.Budget(g.NumLinks(), meas, len(reqs)))
	if !res.AllServed() {
		t.Fatalf("decay served %d/%d under radio semantics in %d slots",
			res.NumServed(), len(reqs), res.Slots)
	}
}
