package inject

import (
	"fmt"
	"math/rand"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// Adversary is a (w, λ)-bounded injection process: over every interval
// of w slots the injected request vector R satisfies ‖W·R‖∞ ≤ w·λ.
type Adversary interface {
	Process
	// Window returns the adversary's window length w.
	Window() int
}

// Timing describes where inside its window a pattern adversary places
// its packets.
type Timing int

// Pattern timings.
const (
	// TimingBurst injects the whole window budget in the first slot.
	TimingBurst Timing = iota + 1
	// TimingSpread spreads injections evenly across the window.
	TimingSpread
	// TimingSawtooth injects the whole budget in the last slot of the
	// window, maximizing the age pressure on the following window.
	TimingSawtooth
)

// String returns the timing name.
func (t Timing) String() string {
	switch t {
	case TimingBurst:
		return "burst"
	case TimingSpread:
		return "spread"
	case TimingSawtooth:
		return "sawtooth"
	default:
		return fmt.Sprintf("Timing(%d)", int(t))
	}
}

// Pattern is a deterministic (w, λ)-bounded adversary that cycles
// through a fixed list of candidate paths. Per window it injects as many
// packets as the budget w·λ admits (measured exactly against the model),
// placing them according to the timing. In rotating mode every window's
// budget is concentrated on a single path, cycling across windows — the
// attack that stresses each part of the network in turn.
type Pattern struct {
	model  interference.Model
	paths  []netgraph.Path
	w      int
	lambda float64
	timing Timing
	rotate bool

	// unitMeasure[i] = ‖W·R_paths[i]‖∞, used to price each injection.
	unitMeasure []float64

	nextID    int64
	nextPath  int
	spent     float64 // total measure injected, for AchievedRate
	windows   int64
	pending   []Packet
	stepBuf   []Packet // Step result buffer, reused across slots
	windowTop int64    // first slot of the current window
}

var _ Adversary = (*Pattern)(nil)

// NewPattern builds a pattern adversary. The price of injecting one
// packet on path P is charged conservatively as ‖W·R_P‖∞, which makes
// every generated sequence (w, λ)-admissible regardless of path mixture
// (the true combined measure is never larger than the sum of the parts,
// by sub-additivity of ‖·‖∞ over non-negative vectors).
func NewPattern(m interference.Model, paths []netgraph.Path, w int, lambda float64, timing Timing) (*Pattern, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("inject: pattern adversary needs at least one path")
	}
	if w < 1 {
		return nil, fmt.Errorf("inject: window %d must be at least 1", w)
	}
	if lambda <= 0 {
		return nil, fmt.Errorf("inject: rate %v must be positive", lambda)
	}
	p := &Pattern{model: m, paths: paths, w: w, lambda: lambda, timing: timing}
	p.unitMeasure = make([]float64, len(paths))
	for i, path := range paths {
		if err := validatePathLinks(m.NumLinks(), path); err != nil {
			return nil, err
		}
		p.unitMeasure[i] = interference.Measure(m, PathRequests(m.NumLinks(), path))
		if p.unitMeasure[i] <= 0 {
			return nil, fmt.Errorf("inject: path %d has zero measure", i)
		}
	}
	return p, nil
}

// NewRotating builds a pattern adversary in rotating mode: window k
// spends its whole budget on path k mod len(paths).
func NewRotating(m interference.Model, paths []netgraph.Path, w int, lambda float64, timing Timing) (*Pattern, error) {
	p, err := NewPattern(m, paths, w, lambda, timing)
	if err != nil {
		return nil, err
	}
	p.rotate = true
	return p, nil
}

func validatePathLinks(numLinks int, p netgraph.Path) error {
	if len(p) == 0 {
		return fmt.Errorf("inject: empty path")
	}
	for _, e := range p {
		if e < 0 || int(e) >= numLinks {
			return fmt.Errorf("inject: path link %d out of range [0,%d)", e, numLinks)
		}
	}
	return nil
}

// Name implements Process.
func (p *Pattern) Name() string {
	if p.rotate {
		return fmt.Sprintf("adversary-rotating-%s(w=%d)", p.timing, p.w)
	}
	return fmt.Sprintf("adversary-%s(w=%d)", p.timing, p.w)
}

// Rate implements Process.
func (p *Pattern) Rate() float64 { return p.lambda }

// Window implements Adversary.
func (p *Pattern) Window() int { return p.w }

// AchievedRate returns the long-run injected measure per slot so far —
// at most λ, and strictly below it when packet prices do not divide the
// window budget evenly.
func (p *Pattern) AchievedRate() float64 {
	if p.windows == 0 {
		return 0
	}
	return p.spent / (float64(p.windows) * float64(p.w))
}

// planWindow decides the packets of the window starting at slot t0. The
// spend per window never exceeds w·λ — unspent budget is forfeited, not
// carried over, since a carried-over burst would overload some sliding
// window. AchievedRate reports the resulting long-run rate.
func (p *Pattern) planWindow(t0 int64) {
	p.windowTop = t0
	p.windows++
	budget := float64(p.w) * p.lambda
	// Reuse the previous window's plan buffer: by the time a new window
	// is planned every pending packet has been emitted (or is discarded
	// with the plan, exactly as before).
	packets := p.pending[:0]
	if p.rotate {
		// Concentrate the whole window on one path.
		idx := int((p.windows - 1) % int64(len(p.paths)))
		price := p.unitMeasure[idx]
		for price <= budget {
			budget -= price
			p.spent += price
			p.nextID++
			packets = append(packets, Packet{ID: p.nextID, Path: p.paths[idx]})
		}
	} else {
		for {
			price := p.unitMeasure[p.nextPath]
			if price > budget {
				break
			}
			budget -= price
			p.spent += price
			p.nextID++
			packets = append(packets, Packet{ID: p.nextID, Path: p.paths[p.nextPath]})
			p.nextPath = (p.nextPath + 1) % len(p.paths)
		}
	}
	// Stamp slots according to the timing.
	for i := range packets {
		switch p.timing {
		case TimingBurst:
			packets[i].Injected = t0
		case TimingSawtooth:
			packets[i].Injected = t0 + int64(p.w) - 1
		default: // TimingSpread
			packets[i].Injected = t0 + int64(i*p.w/len(packets))
		}
	}
	p.pending = packets
}

// Step implements Process. The result is written into a buffer reused
// across slots (see the Process contract).
func (p *Pattern) Step(t int64, rng *rand.Rand) []Packet {
	if t%int64(p.w) == 0 {
		p.planWindow(t)
	}
	out := p.stepBuf[:0]
	rest := p.pending[:0]
	for _, pkt := range p.pending {
		if pkt.Injected == t {
			out = append(out, pkt)
		} else {
			rest = append(rest, pkt)
		}
	}
	p.pending = rest
	p.stepBuf = out
	return out
}

// Checker verifies on-line that an injection sequence is (w, λ)-bounded,
// over every sliding window of w slots. It is used by tests to certify
// that every adversary implementation honours its contract.
//
// The window measure is maintained incrementally: each packet hop
// entering or leaving the window costs O(nnz) of its link's weight
// column rather than an O(E²) recomputation per slot. The accumulator
// is resynced exactly once per window length, so floating-point drift
// stays far below the checker's rounding slack.
type Checker struct {
	model   interference.Model
	w       int
	budget  float64 // w·λ, with slack for float rounding
	slots   [][]int // ring buffer of per-slot request vectors
	head    int
	filled  int
	meas    *interference.IncrementalMeasure
	steps   int   // Observe calls since the last exact resync
	touched []int // scratch: links the current slot injects on
}

// NewChecker creates a checker for the given window and rate.
func NewChecker(m interference.Model, w int, lambda float64) *Checker {
	c := &Checker{
		model:  m,
		w:      w,
		budget: float64(w)*lambda + 1e-9,
		slots:  make([][]int, w),
		meas:   interference.NewIncremental(m),
	}
	for i := range c.slots {
		c.slots[i] = make([]int, m.NumLinks())
	}
	return c
}

// Observe records the packets injected at one slot (call once per slot,
// in order) and returns an error if any window constraint is violated.
func (c *Checker) Observe(pkts []Packet) error {
	// Expire the slot leaving the window, one column scan per link.
	old := c.slots[c.head]
	for e, cnt := range old {
		if cnt > 0 {
			c.meas.RemoveN(e, cnt)
			old[e] = 0
		}
	}
	// Aggregate the slot's injections per link (old is all-zero here),
	// then apply each link's delta in a single column scan.
	c.touched = c.touched[:0]
	for _, pkt := range pkts {
		for _, e := range pkt.Path {
			if old[e] == 0 {
				c.touched = append(c.touched, int(e))
			}
			old[e]++
		}
	}
	for _, e := range c.touched {
		c.meas.AddN(e, old[e])
	}
	c.head = (c.head + 1) % c.w
	if c.filled < c.w {
		c.filled++
	}
	if c.steps++; c.steps >= c.w {
		c.meas.Resync()
		c.steps = 0
	}
	if meas := c.meas.Measure(); meas > c.budget {
		return fmt.Errorf("inject: window measure %.6f exceeds budget %.6f", meas, c.budget)
	}
	return nil
}
