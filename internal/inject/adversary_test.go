package inject

import (
	"math/rand"
	"testing"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

func patternPaths(links int) []netgraph.Path {
	out := make([]netgraph.Path, links)
	for i := range out {
		out[i] = netgraph.Path{netgraph.LinkID(i)}
	}
	return out
}

func TestPatternConstructorErrors(t *testing.T) {
	m := interference.Identity{Links: 2}
	paths := patternPaths(2)
	cases := []struct {
		name string
		fn   func() error
	}{
		{"no paths", func() error { _, err := NewPattern(m, nil, 10, 0.5, TimingBurst); return err }},
		{"bad window", func() error { _, err := NewPattern(m, paths, 0, 0.5, TimingBurst); return err }},
		{"bad rate", func() error { _, err := NewPattern(m, paths, 10, 0, TimingBurst); return err }},
		{"bad link", func() error {
			_, err := NewPattern(m, []netgraph.Path{{9}}, 10, 0.5, TimingBurst)
			return err
		}},
	}
	for _, tc := range cases {
		if tc.fn() == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}
}

// TestAllTimingsAdmissible is the central adversary property: every
// generated sequence must satisfy the (w, λ) window constraint over all
// sliding windows, for each timing and for models with different W.
func TestAllTimingsAdmissible(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	models := []interference.Model{
		interference.Identity{Links: 4},
		interference.AllOnes{Links: 4},
	}
	for _, m := range models {
		for _, timing := range []Timing{TimingBurst, TimingSpread, TimingSawtooth} {
			for _, lambda := range []float64{0.3, 0.9, 2.5} {
				adv, err := NewPattern(m, patternPaths(4), 16, lambda, timing)
				if err != nil {
					t.Fatal(err)
				}
				chk := NewChecker(m, 16, lambda)
				for slot := int64(0); slot < 800; slot++ {
					pkts := adv.Step(slot, rng)
					if err := chk.Observe(pkts); err != nil {
						t.Fatalf("%s/%s λ=%v slot %d: %v", m.Name(), timing, lambda, slot, err)
					}
				}
			}
		}
	}
}

func TestPatternAchievedRateApproachesLambda(t *testing.T) {
	m := interference.Identity{Links: 4}
	adv, err := NewPattern(m, patternPaths(4), 40, 0.8, TimingSpread)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(112))
	for slot := int64(0); slot < 4000; slot++ {
		adv.Step(slot, rng)
	}
	got := adv.AchievedRate()
	// Identity model, single-hop unit-measure paths with per-window
	// budget 32: exact spending is possible, so the rate should be close.
	if got < 0.7 || got > 0.8+1e-9 {
		t.Errorf("achieved rate %v, want ≈0.8", got)
	}
}

func TestPatternBurstTiming(t *testing.T) {
	m := interference.Identity{Links: 2}
	adv, err := NewPattern(m, patternPaths(2), 10, 0.5, TimingBurst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(113))
	for slot := int64(0); slot < 50; slot++ {
		pkts := adv.Step(slot, rng)
		if len(pkts) > 0 && slot%10 != 0 {
			t.Fatalf("burst adversary injected at mid-window slot %d", slot)
		}
	}
}

func TestPatternSawtoothTiming(t *testing.T) {
	m := interference.Identity{Links: 2}
	adv, err := NewPattern(m, patternPaths(2), 10, 0.5, TimingSawtooth)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(114))
	for slot := int64(0); slot < 50; slot++ {
		pkts := adv.Step(slot, rng)
		if len(pkts) > 0 && slot%10 != 9 {
			t.Fatalf("sawtooth adversary injected at slot %d", slot)
		}
	}
}

func TestPatternUniqueIDsAndStamps(t *testing.T) {
	m := interference.AllOnes{Links: 3}
	adv, err := NewPattern(m, patternPaths(3), 8, 1.5, TimingSpread)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(115))
	seen := make(map[int64]bool)
	for slot := int64(0); slot < 200; slot++ {
		for _, p := range adv.Step(slot, rng) {
			if seen[p.ID] {
				t.Fatalf("duplicate ID %d", p.ID)
			}
			seen[p.ID] = true
			if p.Injected != slot {
				t.Fatalf("packet stamped %d delivered at %d", p.Injected, slot)
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("adversary injected nothing")
	}
}

func TestCheckerDetectsViolation(t *testing.T) {
	m := interference.AllOnes{Links: 2}
	chk := NewChecker(m, 4, 0.5) // budget 2 per window
	// Three packets in one slot exceed the budget.
	pkts := []Packet{
		{ID: 1, Path: netgraph.Path{0}},
		{ID: 2, Path: netgraph.Path{1}},
		{ID: 3, Path: netgraph.Path{0}},
	}
	if err := chk.Observe(pkts); err == nil {
		t.Fatal("checker missed an obvious violation")
	}
}

func TestCheckerSlidingWindow(t *testing.T) {
	m := interference.AllOnes{Links: 1}
	chk := NewChecker(m, 4, 0.5) // budget 2 per any 4 consecutive slots
	one := []Packet{{ID: 1, Path: netgraph.Path{0}}}
	// Slots 0,1: two packets — fine. Slot 2: third within window [0,3] — violation.
	if err := chk.Observe(one); err != nil {
		t.Fatal(err)
	}
	if err := chk.Observe(one); err != nil {
		t.Fatal(err)
	}
	if err := chk.Observe(one); err == nil {
		t.Fatal("sliding-window violation missed")
	}
}

func TestRotatingAdversaryAdmissibleAndFocused(t *testing.T) {
	m := interference.Identity{Links: 3}
	paths := patternPaths(3)
	adv, err := NewRotating(m, paths, 12, 0.5, TimingBurst)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(116))
	chk := NewChecker(m, 12, 0.5)
	pathOfWindow := make(map[int64]map[int]bool)
	for slot := int64(0); slot < 360; slot++ {
		pkts := adv.Step(slot, rng)
		if err := chk.Observe(pkts); err != nil {
			t.Fatalf("slot %d: %v", slot, err)
		}
		win := slot / 12
		for _, p := range pkts {
			if pathOfWindow[win] == nil {
				pathOfWindow[win] = make(map[int]bool)
			}
			pathOfWindow[win][int(p.Path[0])] = true
		}
	}
	// Each window hits exactly one link, and the focus rotates.
	for win, links := range pathOfWindow {
		if len(links) != 1 {
			t.Fatalf("window %d touched %d links, want 1", win, len(links))
		}
		for e := range links {
			if e != int(win%3) {
				t.Fatalf("window %d focused link %d, want %d", win, e, win%3)
			}
		}
	}
	if len(pathOfWindow) < 20 {
		t.Fatalf("only %d windows injected", len(pathOfWindow))
	}
}

func TestAdversaryStringersAndRate(t *testing.T) {
	m := interference.Identity{Links: 2}
	adv, err := NewPattern(m, patternPaths(2), 10, 0.5, TimingBurst)
	if err != nil {
		t.Fatal(err)
	}
	if adv.Name() == "" || adv.Rate() != 0.5 || adv.Window() != 10 {
		t.Errorf("accessors wrong: %q %v %d", adv.Name(), adv.Rate(), adv.Window())
	}
	rot, err := NewRotating(m, patternPaths(2), 10, 0.5, TimingSawtooth)
	if err != nil {
		t.Fatal(err)
	}
	if rot.Name() == adv.Name() {
		t.Error("rotating adversary not distinguished in Name()")
	}
	for _, tm := range []Timing{TimingBurst, TimingSpread, TimingSawtooth, Timing(99)} {
		if tm.String() == "" {
			t.Errorf("empty string for timing %d", tm)
		}
	}
	// AchievedRate before any window is 0.
	fresh, _ := NewPattern(m, patternPaths(2), 10, 0.5, TimingBurst)
	if fresh.AchievedRate() != 0 {
		t.Error("fresh adversary has non-zero achieved rate")
	}
}
