package inject

import (
	"math"
	"math/rand"
	"testing"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

func singleHopGens(links int, p float64) []Generator {
	gens := make([]Generator, links)
	for i := range gens {
		gens[i] = Generator{Choices: []PathChoice{{Path: netgraph.Path{netgraph.LinkID(i)}, P: p}}}
	}
	return gens
}

func TestGeneratorValidate(t *testing.T) {
	good := Generator{Choices: []PathChoice{
		{Path: netgraph.Path{0}, P: 0.3},
		{Path: netgraph.Path{1}, P: 0.7},
	}}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Generator{
		{Choices: []PathChoice{{Path: netgraph.Path{0}, P: -0.1}}},
		{Choices: []PathChoice{{Path: netgraph.Path{}, P: 0.5}}},
		{Choices: []PathChoice{{Path: netgraph.Path{0}, P: 0.6}, {Path: netgraph.Path{1}, P: 0.6}}},
	}
	for i, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("bad generator %d accepted", i)
		}
	}
}

func TestStochasticRateIdentity(t *testing.T) {
	// Identity model: rate is the max per-link expected load.
	m := interference.Identity{Links: 3}
	gens := singleHopGens(3, 0.2)
	s, err := NewStochastic(m, gens)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Rate()-0.2) > 1e-12 {
		t.Errorf("rate = %v, want 0.2", s.Rate())
	}
}

func TestStochasticRateMAC(t *testing.T) {
	// MAC model: rate is the total expected injections.
	m := interference.AllOnes{Links: 4}
	gens := singleHopGens(4, 0.1)
	s, err := NewStochastic(m, gens)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Rate()-0.4) > 1e-12 {
		t.Errorf("rate = %v, want 0.4", s.Rate())
	}
}

func TestStochasticStepStatistics(t *testing.T) {
	m := interference.Identity{Links: 2}
	gens := singleHopGens(2, 0.25)
	s, err := NewStochastic(m, gens)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(101))
	var count int
	const slots = 20000
	seen := make(map[int64]bool)
	for t2 := int64(0); t2 < slots; t2++ {
		pkts := s.Step(t2, rng)
		for _, p := range pkts {
			if seen[p.ID] {
				t.Fatalf("duplicate packet ID %d", p.ID)
			}
			seen[p.ID] = true
			if p.Injected != t2 {
				t.Fatalf("packet stamped %d at slot %d", p.Injected, t2)
			}
		}
		count += len(pkts)
	}
	mean := float64(count) / slots
	if mean < 0.45 || mean > 0.55 {
		t.Errorf("mean injections %v per slot, want ≈0.5", mean)
	}
}

func TestStochasticAtRate(t *testing.T) {
	m := interference.AllOnes{Links: 5}
	gens := singleHopGens(5, 0.1) // base rate 0.5
	s, err := StochasticAtRate(m, gens, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Rate()-0.25) > 1e-9 {
		t.Errorf("scaled rate = %v, want 0.25", s.Rate())
	}
	// Scaling beyond probability-1 per generator must fail.
	if _, err := StochasticAtRate(m, gens, 12); err == nil {
		t.Error("impossible rate accepted")
	}
	// Zero base rate must fail.
	if _, err := StochasticAtRate(m, singleHopGens(5, 0), 0.1); err == nil {
		t.Error("zero base rate accepted")
	}
}

func TestScaleGenerators(t *testing.T) {
	gens := singleHopGens(2, 0.4)
	scaled, err := ScaleGenerators(gens, 2)
	if err != nil {
		t.Fatal(err)
	}
	if scaled[0].Choices[0].P != 0.8 {
		t.Errorf("scaled P = %v, want 0.8", scaled[0].Choices[0].P)
	}
	// The original must be untouched.
	if gens[0].Choices[0].P != 0.4 {
		t.Error("ScaleGenerators mutated input")
	}
	if _, err := ScaleGenerators(gens, 3); err == nil {
		t.Error("over-scaling accepted")
	}
	if _, err := ScaleGenerators(gens, -1); err == nil {
		t.Error("negative scaling accepted")
	}
}

func TestPathRequestsCountsMultiplicity(t *testing.T) {
	r := PathRequests(3, netgraph.Path{0, 1, 0})
	if r[0] != 2 || r[1] != 1 || r[2] != 0 {
		t.Errorf("requests = %v", r)
	}
}

func TestStochasticRejectsBadPaths(t *testing.T) {
	m := interference.Identity{Links: 2}
	gens := []Generator{{Choices: []PathChoice{{Path: netgraph.Path{7}, P: 0.1}}}}
	if _, err := NewStochastic(m, gens); err == nil {
		t.Error("out-of-range path accepted")
	}
}

func TestTraceRecordReplay(t *testing.T) {
	m := interference.Identity{Links: 3}
	gens := singleHopGens(3, 0.3)
	proc, err := NewStochastic(m, gens)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(401))
	trace := Record(proc, 500, rng)
	if trace.Packets() == 0 {
		t.Fatal("trace recorded nothing")
	}
	if trace.Slots() != 500 {
		t.Fatalf("slots = %d", trace.Slots())
	}
	// Two replays produce identical sequences regardless of the rng.
	r1 := rand.New(rand.NewSource(1))
	r2 := rand.New(rand.NewSource(999))
	for slot := int64(0); slot < 500; slot++ {
		a := trace.Replay().Step(slot, r1)
		b := trace.Replay().Step(slot, r2)
		if len(a) != len(b) {
			t.Fatalf("slot %d: replay lengths differ", slot)
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Injected != b[i].Injected {
				t.Fatalf("slot %d: replay packets differ", slot)
			}
		}
	}
	// Beyond the horizon: silence.
	if got := trace.Step(10_000, r1); got != nil {
		t.Fatalf("beyond-horizon step returned %v", got)
	}
	// Mutating a returned slice must not corrupt the recording.
	first := trace.Step(findFirstSlot(t, trace), r1)
	if len(first) > 0 {
		first[0].ID = -1
		again := trace.Step(findFirstSlot(t, trace), r1)
		if again[0].ID == -1 {
			t.Fatal("replay aliasing: caller mutated the recording")
		}
	}
}

func findFirstSlot(t *testing.T, tr *Trace) int64 {
	t.Helper()
	rng := rand.New(rand.NewSource(2))
	for s := int64(0); s < tr.Slots(); s++ {
		if len(tr.Step(s, rng)) > 0 {
			return s
		}
	}
	t.Fatal("no injections in trace")
	return 0
}

func TestPacketRateAndTraceAccessors(t *testing.T) {
	m := interference.AllOnes{Links: 3}
	s, err := NewStochastic(m, singleHopGens(3, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.PacketRate(); math.Abs(got-0.6) > 1e-12 {
		t.Errorf("PacketRate = %v, want 0.6", got)
	}
	rng := rand.New(rand.NewSource(402))
	tr := Record(s, 100, rng)
	if tr.Name() == "" || tr.Rate() != s.Rate() {
		t.Errorf("trace accessors wrong: %q %v", tr.Name(), tr.Rate())
	}
}
