// Package inject implements the paper's two packet-injection models
// (Section 2.1): time-invariant finite-user stochastic injection, and
// the (w, λ)-bounded window adversary. Both bound the average
// interference measure of injected requests per slot by the injection
// rate λ: with F the expected per-slot request vector, every component
// of W·F is at most λ (stochastic), and over any w consecutive slots the
// injected request vector R satisfies ‖W·R‖∞ ≤ w·λ (adversarial).
package inject

import (
	"fmt"
	"math/rand"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// Packet is an injected communication request with a fixed path.
type Packet struct {
	ID       int64
	Path     netgraph.Path
	Injected int64 // slot of injection
}

// Process produces the packets arriving in each slot.
type Process interface {
	// Name identifies the process in experiment output.
	Name() string
	// Step returns the packets injected at slot t. Implementations
	// assign fresh packet IDs and stamp Injected = t. The returned slice
	// is only valid until the next Step call — implementations may reuse
	// it, so callers that keep packets across slots must copy them (the
	// Path slices, by contrast, are stable and may be retained).
	Step(t int64, rng *rand.Rand) []Packet
	// Rate returns the nominal injection rate λ.
	Rate() float64
}

// PathRequests converts a path into its per-link request multiset,
// counting multiplicity for paths that reuse a link.
func PathRequests(numLinks int, p netgraph.Path) []int {
	r := make([]int, numLinks)
	for _, e := range p {
		r[e]++
	}
	return r
}

// PathChoice is one option of a stochastic generator: with probability
// P, inject a packet routed along Path.
type PathChoice struct {
	Path netgraph.Path
	P    float64
}

// Generator is one of the finite users of the stochastic model: per
// slot it injects at most one packet, choosing among its paths with
// fixed probabilities (identically distributed across slots, independent
// of everything else).
type Generator struct {
	Choices []PathChoice
}

// Validate checks that the generator's probabilities form a sub-distribution.
func (g Generator) Validate() error {
	sum := 0.0
	for i, c := range g.Choices {
		if c.P < 0 {
			return fmt.Errorf("inject: generator choice %d has negative probability %v", i, c.P)
		}
		if len(c.Path) == 0 {
			return fmt.Errorf("inject: generator choice %d has empty path", i)
		}
		sum += c.P
	}
	if sum > 1+1e-12 {
		return fmt.Errorf("inject: generator probabilities sum to %v > 1", sum)
	}
	return nil
}

// Stochastic is the finite-user stochastic injection process.
type Stochastic struct {
	gens   []Generator
	rate   float64
	nextID int64
	buf    []Packet // Step result buffer, reused across slots
}

// NewStochastic builds the process and computes its exact injection
// rate λ = ‖W·F‖∞ against the given model.
func NewStochastic(m interference.Model, gens []Generator) (*Stochastic, error) {
	for i, g := range gens {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("generator %d: %w", i, err)
		}
	}
	f := make([]float64, m.NumLinks())
	for _, g := range gens {
		for _, c := range g.Choices {
			for _, e := range c.Path {
				if int(e) >= len(f) || e < 0 {
					return nil, fmt.Errorf("inject: path link %d out of range [0,%d)", e, len(f))
				}
				f[e] += c.P
			}
		}
	}
	return &Stochastic{gens: gens, rate: interference.MeasureVec(m, f)}, nil
}

// Name implements Process.
func (s *Stochastic) Name() string { return "stochastic" }

// Rate implements Process.
func (s *Stochastic) Rate() float64 { return s.rate }

// PacketRate returns the expected number of packets injected per slot —
// the physical-units counterpart of Rate, which is in interference-
// measure units. The ratio PacketRate/Rate is the average number of
// packets one unit of measure budget buys under the model's W.
func (s *Stochastic) PacketRate() float64 {
	total := 0.0
	for _, g := range s.gens {
		for _, c := range g.Choices {
			total += c.P
		}
	}
	return total
}

// Step implements Process. The result is written into a buffer reused
// across slots (see the Process contract).
func (s *Stochastic) Step(t int64, rng *rand.Rand) []Packet {
	out := s.buf[:0]
	for _, g := range s.gens {
		u := rng.Float64()
		for _, c := range g.Choices {
			if u < c.P {
				s.nextID++
				out = append(out, Packet{ID: s.nextID, Path: c.Path, Injected: t})
				break
			}
			u -= c.P
		}
	}
	s.buf = out
	return out
}

// ScaleGenerators multiplies every choice probability by factor,
// returning new generators. It returns an error if any scaled
// generator's probabilities would exceed 1.
func ScaleGenerators(gens []Generator, factor float64) ([]Generator, error) {
	if factor < 0 {
		return nil, fmt.Errorf("inject: negative scale factor %v", factor)
	}
	out := make([]Generator, len(gens))
	for i, g := range gens {
		out[i].Choices = make([]PathChoice, len(g.Choices))
		sum := 0.0
		for j, c := range g.Choices {
			out[i].Choices[j] = PathChoice{Path: c.Path, P: c.P * factor}
			sum += c.P * factor
		}
		if sum > 1+1e-12 {
			return nil, fmt.Errorf("inject: generator %d scales to total probability %v > 1", i, sum)
		}
	}
	return out, nil
}

// StochasticAtRate scales the generators so the process's injection
// rate is exactly lambda, and returns the resulting process. It fails
// if the unscaled rate is zero or if scaling would push a generator's
// total probability above 1 (add more generators in that case).
func StochasticAtRate(m interference.Model, gens []Generator, lambda float64) (*Stochastic, error) {
	base, err := NewStochastic(m, gens)
	if err != nil {
		return nil, err
	}
	if base.rate <= 0 {
		return nil, fmt.Errorf("inject: base generators have zero injection rate")
	}
	scaled, err := ScaleGenerators(gens, lambda/base.rate)
	if err != nil {
		return nil, err
	}
	return NewStochastic(m, scaled)
}
