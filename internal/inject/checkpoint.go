// Injection-process checkpointing. The processes implement sim's
// Checkpointable interface structurally (sim is not imported): each
// serializes the state its future injections depend on, so a resumed
// simulation draws the exact packet sequence of an uninterrupted run.
//
// The stochastic process draws from the engine RNG (whose position the
// engine checkpoints itself), so its only private state is the ID
// counter. The pattern adversary is deterministic but plans a window
// ahead; its counters and not-yet-emitted pending packets serialize in
// full, so checkpoints need no window alignment. Traces are stateless
// replays.
package inject

import (
	"encoding/json"
	"fmt"

	"dynsched/internal/netgraph"
)

type stochasticState struct {
	NextID int64 `json:"nextID"`
}

// CheckpointState implements sim.Checkpointable.
func (s *Stochastic) CheckpointState() ([]byte, error) {
	return json.Marshal(stochasticState{NextID: s.nextID})
}

// RestoreState implements sim.Checkpointable.
func (s *Stochastic) RestoreState(data []byte) error {
	var st stochasticState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	s.nextID = st.NextID
	return nil
}

type pendingPacket struct {
	ID       int64         `json:"id"`
	Path     netgraph.Path `json:"path"`
	Injected int64         `json:"injected"`
}

type patternState struct {
	NextID    int64           `json:"nextID"`
	NextPath  int             `json:"nextPath"`
	Spent     float64         `json:"spent"`
	Windows   int64           `json:"windows"`
	WindowTop int64           `json:"windowTop"`
	Pending   []pendingPacket `json:"pending,omitempty"`
}

// CheckpointState implements sim.Checkpointable.
func (p *Pattern) CheckpointState() ([]byte, error) {
	st := patternState{
		NextID: p.nextID, NextPath: p.nextPath, Spent: p.spent,
		Windows: p.windows, WindowTop: p.windowTop,
	}
	for _, pkt := range p.pending {
		st.Pending = append(st.Pending, pendingPacket{ID: pkt.ID, Path: pkt.Path, Injected: pkt.Injected})
	}
	return json.Marshal(st)
}

// RestoreState implements sim.Checkpointable.
func (p *Pattern) RestoreState(data []byte) error {
	var st patternState
	if err := json.Unmarshal(data, &st); err != nil {
		return err
	}
	if st.NextPath < 0 || st.NextPath >= len(p.paths) {
		return fmt.Errorf("inject: checkpoint path index %d out of range", st.NextPath)
	}
	p.nextID, p.nextPath, p.spent = st.NextID, st.NextPath, st.Spent
	p.windows, p.windowTop = st.Windows, st.WindowTop
	p.pending = p.pending[:0]
	for _, pkt := range st.Pending {
		p.pending = append(p.pending, Packet{ID: pkt.ID, Path: pkt.Path, Injected: pkt.Injected})
	}
	return nil
}

// CheckpointState implements sim.Checkpointable: a trace is stateless
// between steps.
func (t *Trace) CheckpointState() ([]byte, error) { return []byte("{}"), nil }

// RestoreState implements sim.Checkpointable.
func (t *Trace) RestoreState(data []byte) error { return nil }
