package inject

import (
	"bytes"
	"strings"
	"testing"

	"dynsched/internal/netgraph"
)

func testTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := TraceFromRecords("test", 0.4, 0, []TraceRecord{
		{Slot: 0, ID: 1, Path: netgraph.Path{0, 1}},
		{Slot: 0, ID: 2, Path: netgraph.Path{2}},
		{Slot: 3, ID: 3, Path: netgraph.Path{1, 2, 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestNDJSONRoundTripIsIdentity(t *testing.T) {
	tr := testTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	back, err := TraceFromNDJSON(strings.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != tr.Name() || back.Rate() != tr.Rate() || back.Slots() != tr.Slots() {
		t.Fatalf("header changed: got (%q,%v,%d) want (%q,%v,%d)",
			back.Name(), back.Rate(), back.Slots(), tr.Name(), tr.Rate(), tr.Slots())
	}
	var buf2 bytes.Buffer
	if err := back.WriteNDJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if second := buf2.String(); second != first {
		t.Fatalf("round trip not byte-identical:\nfirst  %q\nsecond %q", first, second)
	}
}

func TestNDJSONHorizonDerivedFromLastRecord(t *testing.T) {
	tr := testTrace(t)
	if got, want := tr.Slots(), int64(4); got != want {
		t.Fatalf("derived horizon = %d, want %d", got, want)
	}
}

func TestNDJSONRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty input":     "",
		"missing header":  `{"slot":0,"id":1,"path":[0]}`,
		"unnamed header":  `{"rate":0.5,"slots":10}`,
		"unknown field":   "{\"trace\":\"t\",\"rate\":0.5,\"slots\":10}\n{\"slot\":0,\"id\":1,\"path\":[0],\"bogus\":1}",
		"duplicate id":    "{\"trace\":\"t\",\"rate\":0.5,\"slots\":10}\n{\"slot\":0,\"id\":1,\"path\":[0]}\n{\"slot\":1,\"id\":1,\"path\":[0]}",
		"empty path":      "{\"trace\":\"t\",\"rate\":0.5,\"slots\":10}\n{\"slot\":0,\"id\":1,\"path\":[]}",
		"negative slot":   "{\"trace\":\"t\",\"rate\":0.5,\"slots\":10}\n{\"slot\":-1,\"id\":1,\"path\":[0]}",
		"not json at all": "hello\n",
	}
	for name, input := range cases {
		if _, err := TraceFromNDJSON(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestNDJSONReplayMatchesOriginal(t *testing.T) {
	tr := testTrace(t)
	var buf bytes.Buffer
	if err := tr.WriteNDJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := TraceFromNDJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for slot := int64(0); slot < tr.Slots(); slot++ {
		a, b := tr.Step(slot, nil), back.Step(slot, nil)
		if len(a) != len(b) {
			t.Fatalf("slot %d: %d vs %d packets", slot, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || len(a[i].Path) != len(b[i].Path) {
				t.Fatalf("slot %d packet %d differs: %+v vs %+v", slot, i, a[i], b[i])
			}
		}
	}
}
