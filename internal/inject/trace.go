package inject

import (
	"fmt"
	"math/rand"
)

// Trace is a recorded injection sequence that can be replayed
// identically. Replaying the same arrivals against different protocols
// removes arrival noise from comparisons — the paired-run methodology
// the ablation experiments use.
type Trace struct {
	name   string
	rate   float64
	slots  int64
	bySlot map[int64][]Packet
}

// Record runs the process for the given number of slots and captures
// every injection. The source process is consumed (its internal state
// advances); use the returned trace from then on.
func Record(proc Process, slots int64, rng *rand.Rand) *Trace {
	t := &Trace{
		name:   fmt.Sprintf("trace(%s)", proc.Name()),
		rate:   proc.Rate(),
		slots:  slots,
		bySlot: make(map[int64][]Packet),
	}
	for s := int64(0); s < slots; s++ {
		if pkts := proc.Step(s, rng); len(pkts) > 0 {
			// Step results are only valid until the next call; the
			// recording needs its own copy.
			cp := make([]Packet, len(pkts))
			copy(cp, pkts)
			t.bySlot[s] = cp
		}
	}
	return t
}

// Name implements Process.
func (t *Trace) Name() string { return t.name }

// Rate implements Process.
func (t *Trace) Rate() float64 { return t.rate }

// Slots returns the recorded horizon.
func (t *Trace) Slots() int64 { return t.slots }

// Packets returns the total number of recorded packets.
func (t *Trace) Packets() int {
	n := 0
	for _, pkts := range t.bySlot {
		n += len(pkts)
	}
	return n
}

// Step implements Process by replaying the recording; slots beyond the
// recorded horizon inject nothing. Each returned slice is a fresh copy
// so protocols cannot corrupt the recording.
func (t *Trace) Step(slot int64, rng *rand.Rand) []Packet {
	pkts, ok := t.bySlot[slot]
	if !ok {
		return nil
	}
	out := make([]Packet, len(pkts))
	copy(out, pkts)
	return out
}

// Replay returns a fresh replayable view of the trace. Traces are
// stateless between Steps, so the trace itself can be shared across
// sequential runs; Replay exists to make that intent explicit at call
// sites.
func (t *Trace) Replay() *Trace { return t }
