// NDJSON trace serialization: recorded workloads round-trip through a
// newline-delimited JSON format, so real traffic shapes can be
// journaled, shipped, and replayed byte-identically through the
// service. The format is one header line
//
//	{"trace":"<name>","rate":<λ>,"slots":<horizon>}
//
// followed by one line per packet, slots ascending, recorded order
// within a slot:
//
//	{"slot":<t>,"id":<id>,"path":[<link>,...]}
//
// WriteNDJSON emits canonical output (json.Marshal field order), so
// TraceFromNDJSON∘WriteNDJSON is the identity on bytes as well as on
// traces.
package inject

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dynsched/internal/netgraph"
)

// TraceRecord is one packet of a serialized trace.
type TraceRecord struct {
	Slot int64         `json:"slot"`
	ID   int64         `json:"id"`
	Path netgraph.Path `json:"path"`
}

type traceHeader struct {
	Trace string  `json:"trace"`
	Rate  float64 `json:"rate"`
	Slots int64   `json:"slots"`
}

// Records returns the trace's packets as serializable records, slots
// ascending, recorded order within a slot.
func (t *Trace) Records() []TraceRecord {
	slots := make([]int64, 0, len(t.bySlot))
	for s := range t.bySlot {
		slots = append(slots, s)
	}
	sort.Slice(slots, func(i, j int) bool { return slots[i] < slots[j] })
	var out []TraceRecord
	for _, s := range slots {
		for _, pkt := range t.bySlot[s] {
			out = append(out, TraceRecord{Slot: s, ID: pkt.ID, Path: pkt.Path})
		}
	}
	return out
}

// TraceFromRecords builds a replayable trace from serialized records.
// IDs must be unique and paths non-empty; slots must be non-negative.
// slots <= 0 derives the horizon from the last record.
func TraceFromRecords(name string, rate float64, slots int64, recs []TraceRecord) (*Trace, error) {
	t := &Trace{name: name, rate: rate, slots: slots, bySlot: make(map[int64][]Packet)}
	seen := make(map[int64]bool, len(recs))
	for i, r := range recs {
		if r.Slot < 0 {
			return nil, fmt.Errorf("inject: trace record %d has negative slot %d", i, r.Slot)
		}
		if len(r.Path) == 0 {
			return nil, fmt.Errorf("inject: trace record %d has empty path", i)
		}
		if seen[r.ID] {
			return nil, fmt.Errorf("inject: trace record %d reuses packet ID %d", i, r.ID)
		}
		seen[r.ID] = true
		if r.Slot >= t.slots {
			t.slots = r.Slot + 1
		}
		t.bySlot[r.Slot] = append(t.bySlot[r.Slot], Packet{ID: r.ID, Path: r.Path, Injected: r.Slot})
	}
	return t, nil
}

// WriteNDJSON serializes the trace in canonical NDJSON form.
func (t *Trace) WriteNDJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	hdr, err := json.Marshal(traceHeader{Trace: t.name, Rate: t.rate, Slots: t.slots})
	if err != nil {
		return err
	}
	bw.Write(hdr)
	bw.WriteByte('\n')
	for _, rec := range t.Records() {
		line, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		bw.Write(line)
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// TraceFromNDJSON parses a trace serialized by WriteNDJSON (or written
// by hand / external tooling in the same shape). The first non-empty
// line must be the header; unknown fields are rejected so malformed
// traces fail loudly rather than replay silently wrong.
func TraceFromNDJSON(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var hdr *traceHeader
	var recs []TraceRecord
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		if hdr == nil {
			hdr = &traceHeader{}
			if err := dec.Decode(hdr); err != nil {
				return nil, fmt.Errorf("inject: trace header (line %d): %w", lineNo, err)
			}
			if hdr.Trace == "" {
				return nil, fmt.Errorf("inject: trace header (line %d) missing \"trace\" name", lineNo)
			}
			continue
		}
		var rec TraceRecord
		if err := dec.Decode(&rec); err != nil {
			return nil, fmt.Errorf("inject: trace record (line %d): %w", lineNo, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("inject: reading trace: %w", err)
	}
	if hdr == nil {
		return nil, fmt.Errorf("inject: empty trace input")
	}
	return TraceFromRecords(hdr.Trace, hdr.Rate, hdr.Slots, recs)
}
