package baseline

import (
	"context"
	"testing"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
)

func singleHopProc(t *testing.T, m interference.Model, links int, lambda float64) inject.Process {
	t.Helper()
	gens := make([]inject.Generator, links)
	for i := range gens {
		gens[i] = inject.Generator{Choices: []inject.PathChoice{
			{Path: netgraph.Path{netgraph.LinkID(i)}, P: 0.5},
		}}
	}
	proc, err := inject.StochasticAtRate(m, gens, lambda)
	if err != nil {
		t.Fatal(err)
	}
	return proc
}

func TestMaxWeightStableOnIdentity(t *testing.T) {
	m := interference.Identity{Links: 5}
	proc := singleHopProc(t, m, 5, 0.7)
	proto := NewMaxWeight(m)
	res, err := sim.Run(context.Background(), sim.Config{Slots: 20000, Seed: 141}, m, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%d protocol errors", res.ProtocolErrors)
	}
	if !res.Verdict.Stable {
		t.Errorf("max-weight unstable on identity at 0.7: %+v", res.Verdict)
	}
	if res.Delivered+res.InFlight != res.Injected {
		t.Fatal("conservation violated")
	}
}

func TestMaxWeightStableOnMAC(t *testing.T) {
	m := interference.AllOnes{Links: 4}
	proc := singleHopProc(t, m, 4, 0.8) // total rate 0.8 < 1: serviceable
	proto := NewMaxWeight(m)
	res, err := sim.Run(context.Background(), sim.Config{Slots: 30000, Seed: 142}, m, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.Stable {
		t.Errorf("max-weight unstable on MAC at 0.8: %+v", res.Verdict)
	}
}

func TestMACFallbackStableAtLowRate(t *testing.T) {
	m := interference.Identity{Links: 6}
	// The fallback serves one packet per slot network-wide, so the
	// aggregate identity rate 6·λ must stay below 1: use λ = 0.1.
	proc := singleHopProc(t, m, 6, 0.1)
	proto := NewMACFallback(6)
	res, err := sim.Run(context.Background(), sim.Config{Slots: 20000, Seed: 143}, m, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verdict.Stable {
		t.Errorf("fallback unstable at aggregate 0.6: %+v", res.Verdict)
	}
}

func TestMACFallbackWastesParallelism(t *testing.T) {
	// The same workload is stable under FIFO greedy (identity model is
	// fully parallel) but unstable under the serializing fallback — the
	// factor-m loss of Section 8.
	m := interference.Identity{Links: 6}
	proc1 := singleHopProc(t, m, 6, 0.5)
	fifores, err := sim.Run(context.Background(), sim.Config{Slots: 20000, Seed: 144}, m, proc1, NewFIFOGreedy(6))
	if err != nil {
		t.Fatal(err)
	}
	if !fifores.Verdict.Stable {
		t.Fatalf("FIFO greedy unstable on identity at 0.5: %+v", fifores.Verdict)
	}
	proc2 := singleHopProc(t, m, 6, 0.5)
	fbres, err := sim.Run(context.Background(), sim.Config{Slots: 20000, Seed: 144}, m, proc2, NewMACFallback(6))
	if err != nil {
		t.Fatal(err)
	}
	if fbres.Verdict.Stable {
		t.Errorf("serializing fallback judged stable at aggregate rate 3: %+v", fbres.Verdict)
	}
}

func TestFIFOGreedyMultiHop(t *testing.T) {
	g := netgraph.LineNetwork(5, 1)
	m := interference.Identity{Links: g.NumLinks()}
	path, _ := netgraph.ShortestPath(g, 0, 4)
	gens := []inject.Generator{{Choices: []inject.PathChoice{{Path: path, P: 0.4}}}}
	proc, err := inject.NewStochastic(m, gens)
	if err != nil {
		t.Fatal(err)
	}
	proto := NewFIFOGreedy(g.NumLinks())
	res, err := sim.Run(context.Background(), sim.Config{Slots: 20000, Seed: 145}, m, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%d protocol errors", res.ProtocolErrors)
	}
	if !res.Verdict.Stable {
		t.Errorf("FIFO greedy unstable on 4-hop line at 0.4: %+v", res.Verdict)
	}
	// Per-hop latency ≈ 1 when uncontended.
	if hl := res.HopLatency.Mean(); hl > 3 {
		t.Errorf("per-hop latency %v", hl)
	}
}

func TestQueueLenAccounting(t *testing.T) {
	m := interference.AllOnes{Links: 2}
	proto := NewMaxWeight(m)
	proto.Inject(0, []inject.Packet{
		{ID: 1, Path: netgraph.Path{0}},
		{ID: 2, Path: netgraph.Path{1}},
	})
	if proto.QueueLen() != 2 {
		t.Fatalf("QueueLen = %d, want 2", proto.QueueLen())
	}
}

func TestSISStableOnIdentity(t *testing.T) {
	g := netgraph.LineNetwork(5, 1)
	m := interference.Identity{Links: g.NumLinks()}
	path, _ := netgraph.ShortestPath(g, 0, 4)
	gens := []inject.Generator{{Choices: []inject.PathChoice{{Path: path, P: 0.4}}}}
	proc, err := inject.NewStochastic(m, gens)
	if err != nil {
		t.Fatal(err)
	}
	proto := NewSIS(g.NumLinks())
	res, err := sim.Run(context.Background(), sim.Config{Slots: 20000, Seed: 146}, m, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%d protocol errors", res.ProtocolErrors)
	}
	if !res.Verdict.Stable {
		t.Errorf("SIS unstable on 4-hop line at 0.4: %+v", res.Verdict)
	}
	if res.Delivered+res.InFlight != res.Injected {
		t.Fatal("conservation violated")
	}
}

func TestSISServesNewestFirst(t *testing.T) {
	proto := NewSIS(1)
	proto.Inject(0, []inject.Packet{{ID: 1, Path: netgraph.Path{0}, Injected: 0}})
	proto.Inject(5, []inject.Packet{{ID: 2, Path: netgraph.Path{0}, Injected: 5}})
	tx := proto.Slot(6, nil)
	if len(tx) != 1 || tx[0].PacketID != 2 {
		t.Fatalf("SIS picked %v, want the newest packet (ID 2)", tx)
	}
	proto.Feedback(6, tx, []bool{true})
	// The older packet is served next.
	tx = proto.Slot(7, nil)
	if len(tx) != 1 || tx[0].PacketID != 1 {
		t.Fatalf("SIS picked %v after serving the newest, want ID 1", tx)
	}
	proto.Feedback(7, tx, []bool{true})
	if proto.QueueLen() != 0 {
		t.Fatalf("QueueLen = %d after draining", proto.QueueLen())
	}
}
