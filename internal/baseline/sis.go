package baseline

import (
	"math/rand"

	"dynsched/internal/inject"
	"dynsched/internal/sim"
)

// SIS is the Shortest-In-System greedy policy of Andrews et al. [3],
// the classic universally stable contention-resolution protocol for
// adversarial packet routing: every non-empty link transmits, choosing
// the packet that entered the system most recently. Like FIFOGreedy it
// ignores interference between links, so it is a packet-routing
// (identity-model) baseline — under real interference models it shows
// why the paper's geometry-aware protocol is needed.
type SIS struct {
	byLink [][]*sisPkt
	held   int
}

type sisPkt struct {
	id       int64
	path     []int
	hop      int
	injected int64
}

var _ sim.Protocol = (*SIS)(nil)

// NewSIS builds the protocol for a model with the given link count.
func NewSIS(numLinks int) *SIS {
	return &SIS{byLink: make([][]*sisPkt, numLinks)}
}

// Name implements sim.Protocol.
func (*SIS) Name() string { return "shortest-in-system" }

// QueueLen returns the number of packets held.
func (s *SIS) QueueLen() int { return s.held }

// Inject implements sim.Protocol.
func (s *SIS) Inject(t int64, pkts []inject.Packet) {
	for _, ip := range pkts {
		path := make([]int, len(ip.Path))
		for i, e := range ip.Path {
			path[i] = int(e)
		}
		p := &sisPkt{id: ip.ID, path: path, injected: ip.Injected}
		s.byLink[path[0]] = append(s.byLink[path[0]], p)
		s.held++
	}
}

// pick returns the index of the most recently injected packet queued on
// link e, or -1.
func (s *SIS) pick(e int) int {
	best := -1
	for i, p := range s.byLink[e] {
		if best == -1 || p.injected > s.byLink[e][best].injected ||
			(p.injected == s.byLink[e][best].injected && p.id > s.byLink[e][best].id) {
			best = i
		}
	}
	return best
}

// Slot implements sim.Protocol.
func (s *SIS) Slot(t int64, rng *rand.Rand) []sim.Transmission {
	var out []sim.Transmission
	for e := range s.byLink {
		if i := s.pick(e); i >= 0 {
			out = append(out, sim.Transmission{Link: e, PacketID: s.byLink[e][i].id})
		}
	}
	return out
}

// Feedback implements sim.Protocol.
func (s *SIS) Feedback(t int64, tx []sim.Transmission, success []bool) {
	for i, w := range tx {
		if !success[i] {
			continue
		}
		// Locate and remove the packet from its queue.
		q := s.byLink[w.Link]
		for j, p := range q {
			if p.id != w.PacketID {
				continue
			}
			s.byLink[w.Link] = append(q[:j], q[j+1:]...)
			p.hop++
			if p.hop < len(p.path) {
				next := p.path[p.hop]
				s.byLink[next] = append(s.byLink[next], p)
			} else {
				s.held--
			}
			break
		}
	}
}
