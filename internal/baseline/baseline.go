// Package baseline provides reference protocols the experiments compare
// the paper's transformation against: the centralized max-weight
// scheduler of Tassiulas and Ephremides [40] (the throughput-optimal but
// non-distributed, non-polynomial reference the paper positions itself
// against), the multiple-access-channel fallback (the trivially
// O(m)-competitive protocol of Section 8), a greedy FIFO protocol, and
// Shortest-In-System (the universally stable adversarial-queueing policy
// of Andrews et al. [3]).
package baseline

import (
	"math/rand"
	"sort"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/sim"
)

// queues is the shared per-link FIFO bookkeeping of the baselines.
type queues struct {
	byLink  [][]*qpkt
	packets map[int64]*qpkt
}

type qpkt struct {
	id   int64
	path []int
	hop  int
}

func newQueues(numLinks int) *queues {
	return &queues{byLink: make([][]*qpkt, numLinks), packets: make(map[int64]*qpkt)}
}

func (q *queues) inject(pkts []inject.Packet) {
	for _, ip := range pkts {
		path := make([]int, len(ip.Path))
		for i, e := range ip.Path {
			path[i] = int(e)
		}
		p := &qpkt{id: ip.ID, path: path}
		q.packets[p.id] = p
		q.byLink[path[0]] = append(q.byLink[path[0]], p)
	}
}

// head returns the head-of-line packet on link e, or nil.
func (q *queues) head(e int) *qpkt {
	if len(q.byLink[e]) == 0 {
		return nil
	}
	return q.byLink[e][0]
}

// advance moves the head packet of link e forward after a success.
func (q *queues) advance(e int) {
	p := q.byLink[e][0]
	q.byLink[e] = q.byLink[e][1:]
	p.hop++
	if p.hop == len(p.path) {
		delete(q.packets, p.id)
		return
	}
	next := p.path[p.hop]
	q.byLink[next] = append(q.byLink[next], p)
}

func (q *queues) total() int { return len(q.packets) }

// MaxWeight is the centralized scheduler of Tassiulas and Ephremides:
// each slot it greedily builds a feasible set of links in decreasing
// queue-length order (a polynomial surrogate for the NP-hard maximum
// weight feasible set; for matching-like conflict structures greedy is a
// 2-approximation). It needs global queue knowledge and a feasibility
// oracle — everything the paper's distributed protocol does without.
type MaxWeight struct {
	model interference.Model
	q     *queues
}

var _ sim.Protocol = (*MaxWeight)(nil)

// NewMaxWeight builds the scheduler for the model.
func NewMaxWeight(m interference.Model) *MaxWeight {
	return &MaxWeight{model: m, q: newQueues(m.NumLinks())}
}

// Name implements sim.Protocol.
func (*MaxWeight) Name() string { return "max-weight" }

// QueueLen returns the number of packets held.
func (mw *MaxWeight) QueueLen() int { return mw.q.total() }

// Inject implements sim.Protocol.
func (mw *MaxWeight) Inject(t int64, pkts []inject.Packet) { mw.q.inject(pkts) }

// Slot implements sim.Protocol.
func (mw *MaxWeight) Slot(t int64, rng *rand.Rand) []sim.Transmission {
	type cand struct {
		link int
		qlen int
	}
	var cands []cand
	for e := range mw.q.byLink {
		if n := len(mw.q.byLink[e]); n > 0 {
			cands = append(cands, cand{link: e, qlen: n})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].qlen != cands[j].qlen {
			return cands[i].qlen > cands[j].qlen
		}
		return cands[i].link < cands[j].link
	})
	var set []int
	for _, c := range cands {
		trial := append(append([]int(nil), set...), c.link)
		if interference.SlotFeasible(mw.model, trial) {
			set = trial
		}
	}
	out := make([]sim.Transmission, 0, len(set))
	for _, e := range set {
		out = append(out, sim.Transmission{Link: e, PacketID: mw.q.head(e).id})
	}
	return out
}

// Feedback implements sim.Protocol.
func (mw *MaxWeight) Feedback(t int64, tx []sim.Transmission, success []bool) {
	for i, w := range tx {
		if success[i] {
			mw.q.advance(w.Link)
		}
	}
}

// MACFallback serializes the whole network as if it were one
// multiple-access channel: a single transmission per slot, round-robin
// over non-empty links. It is the trivially O(m)-competitive protocol
// Section 8 mentions, and the yardstick for the lower-bound experiment.
type MACFallback struct {
	q    *queues
	next int
}

var _ sim.Protocol = (*MACFallback)(nil)

// NewMACFallback builds the fallback for a model with the given link count.
func NewMACFallback(numLinks int) *MACFallback {
	return &MACFallback{q: newQueues(numLinks)}
}

// Name implements sim.Protocol.
func (*MACFallback) Name() string { return "mac-fallback" }

// QueueLen returns the number of packets held.
func (mf *MACFallback) QueueLen() int { return mf.q.total() }

// Inject implements sim.Protocol.
func (mf *MACFallback) Inject(t int64, pkts []inject.Packet) { mf.q.inject(pkts) }

// Slot implements sim.Protocol.
func (mf *MACFallback) Slot(t int64, rng *rand.Rand) []sim.Transmission {
	n := len(mf.q.byLink)
	for i := 0; i < n; i++ {
		e := (mf.next + i) % n
		if p := mf.q.head(e); p != nil {
			mf.next = (e + 1) % n
			return []sim.Transmission{{Link: e, PacketID: p.id}}
		}
	}
	return nil
}

// Feedback implements sim.Protocol.
func (mf *MACFallback) Feedback(t int64, tx []sim.Transmission, success []bool) {
	for i, w := range tx {
		if success[i] {
			mf.q.advance(w.Link)
		}
	}
}

// FIFOGreedy transmits the head-of-line packet of every non-empty link
// in every slot. It is optimal for the identity (packet-routing) model
// and an instructive failure case under real interference.
type FIFOGreedy struct {
	q *queues
}

var _ sim.Protocol = (*FIFOGreedy)(nil)

// NewFIFOGreedy builds the protocol for a model with the given link count.
func NewFIFOGreedy(numLinks int) *FIFOGreedy {
	return &FIFOGreedy{q: newQueues(numLinks)}
}

// Name implements sim.Protocol.
func (*FIFOGreedy) Name() string { return "fifo-greedy" }

// QueueLen returns the number of packets held.
func (fg *FIFOGreedy) QueueLen() int { return fg.q.total() }

// Inject implements sim.Protocol.
func (fg *FIFOGreedy) Inject(t int64, pkts []inject.Packet) { fg.q.inject(pkts) }

// Slot implements sim.Protocol.
func (fg *FIFOGreedy) Slot(t int64, rng *rand.Rand) []sim.Transmission {
	var out []sim.Transmission
	for e := range fg.q.byLink {
		if p := fg.q.head(e); p != nil {
			out = append(out, sim.Transmission{Link: e, PacketID: p.id})
		}
	}
	return out
}

// Feedback implements sim.Protocol.
func (fg *FIFOGreedy) Feedback(t int64, tx []sim.Transmission, success []bool) {
	for i, w := range tx {
		if success[i] {
			fg.q.advance(w.Link)
		}
	}
}
