package traffic

import (
	"math"
	"math/rand"
	"testing"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

func TestSingleHopRate(t *testing.T) {
	m := interference.Identity{Links: 4}
	proc, err := SingleHop(m, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(proc.Rate()-0.3) > 1e-9 {
		t.Fatalf("rate = %v, want 0.3", proc.Rate())
	}
}

func TestPathsSuperCritical(t *testing.T) {
	m := interference.Identity{Links: 3}
	g := netgraph.LineNetwork(4, 1)
	p, _ := netgraph.ShortestPath(g, 0, 3)
	// Rates above 1 must be expressible (for overload experiments).
	proc, err := Paths(interference.Identity{Links: g.NumLinks()}, []netgraph.Path{p}, 2.2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(proc.Rate()-2.2) > 1e-9 {
		t.Fatalf("rate = %v, want 2.2", proc.Rate())
	}
	if _, err := Paths(m, nil, 0.5); err == nil {
		t.Fatal("empty path list accepted")
	}
}

func TestConvergecast(t *testing.T) {
	g := netgraph.GridNetwork(3, 3, 1)
	m := interference.Identity{Links: g.NumLinks()}
	proc, maxHops, err := Convergecast(m, g, 0, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if maxHops != 4 {
		t.Errorf("max hops = %d, want 4 (corner to corner)", maxHops)
	}
	if math.Abs(proc.Rate()-0.2) > 1e-9 {
		t.Errorf("rate = %v, want 0.2", proc.Rate())
	}
	// A disconnected node must fail loudly.
	iso := netgraph.New(3)
	iso.MustAddLink(0, 1)
	if _, _, err := Convergecast(interference.Identity{Links: 1}, iso, 0, 0.1); err == nil {
		t.Error("unreachable sink accepted")
	}
}

func TestRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(301))
	g := netgraph.GridNetwork(3, 3, 1)
	m := interference.Identity{Links: g.NumLinks()}
	proc, maxHops, err := RandomPairs(rng, m, g, 5, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if maxHops < 1 {
		t.Errorf("max hops = %d", maxHops)
	}
	if math.Abs(proc.Rate()-0.3) > 1e-9 {
		t.Errorf("rate = %v", proc.Rate())
	}
}

func TestHotspot(t *testing.T) {
	rng := rand.New(rand.NewSource(302))
	g := netgraph.GridNetwork(3, 3, 1)
	m := interference.Identity{Links: g.NumLinks()}
	proc, _, err := Hotspot(rng, m, g, 4, 0.7, 4, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(proc.Rate()-0.25) > 1e-9 {
		t.Errorf("rate = %v", proc.Rate())
	}
	if _, _, err := Hotspot(rng, m, g, 4, 1.5, 4, 0.25); err == nil {
		t.Error("bad hot fraction accepted")
	}
}

func TestWorkloadsActuallyInject(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	g := netgraph.GridNetwork(3, 3, 1)
	m := interference.Identity{Links: g.NumLinks()}
	sh, err := SingleHop(m, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for slot := int64(0); slot < 2000; slot++ {
		count += len(sh.Step(slot, rng))
	}
	if count == 0 {
		t.Fatal("single-hop workload injected nothing")
	}
}
