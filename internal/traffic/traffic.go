// Package traffic builds the injection workloads the experiments and
// examples share: single-hop per-link load, convergecast to a sink,
// uniform random pairs, and hotspot patterns. Each builder returns
// stochastic generators wired to an exact target rate in the model's
// interference-measure units.
package traffic

import (
	"fmt"
	"math/rand"

	"dynsched/internal/inject"
	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// SingleHop creates one generator per link, injecting on the link's
// single-hop path, scaled to the given total rate.
func SingleHop(m interference.Model, lambda float64) (*inject.Stochastic, error) {
	gens := make([]inject.Generator, m.NumLinks())
	for e := range gens {
		gens[e] = inject.Generator{Choices: []inject.PathChoice{
			{Path: netgraph.Path{netgraph.LinkID(e)}, P: 0.5},
		}}
	}
	return inject.StochasticAtRate(m, gens, lambda)
}

// Paths spreads the rate across the given explicit paths, splitting each
// path's probability over enough generators that super-critical rates
// remain expressible.
func Paths(m interference.Model, paths []netgraph.Path, lambda float64) (*inject.Stochastic, error) {
	if len(paths) == 0 {
		return nil, fmt.Errorf("traffic: no paths")
	}
	perPath := int(lambda) + 2
	gens := make([]inject.Generator, 0, len(paths)*perPath)
	for _, p := range paths {
		for i := 0; i < perPath; i++ {
			gens = append(gens, inject.Generator{Choices: []inject.PathChoice{
				{Path: p, P: 1.0 / float64(perPath+1)},
			}})
		}
	}
	return inject.StochasticAtRate(m, gens, lambda)
}

// Convergecast routes every node to the sink along shortest paths — the
// sensor-network workload. It returns the process and the longest route
// (the D the protocol needs).
func Convergecast(m interference.Model, g *netgraph.Graph, sink netgraph.NodeID, lambda float64) (*inject.Stochastic, int, error) {
	rt := netgraph.NewRoutingTable(g)
	var paths []netgraph.Path
	maxHops := 0
	for v := netgraph.NodeID(0); int(v) < g.NumNodes(); v++ {
		if v == sink {
			continue
		}
		p, ok := rt.Path(v, sink)
		if !ok {
			return nil, 0, fmt.Errorf("traffic: node %d cannot reach sink %d", v, sink)
		}
		paths = append(paths, p)
		if len(p) > maxHops {
			maxHops = len(p)
		}
	}
	proc, err := Paths(m, paths, lambda)
	if err != nil {
		return nil, 0, err
	}
	return proc, maxHops, nil
}

// RandomPairs draws k random source–destination pairs (connected ones)
// and routes them along shortest paths. It returns the process and the
// longest route.
func RandomPairs(rng *rand.Rand, m interference.Model, g *netgraph.Graph, k int, lambda float64) (*inject.Stochastic, int, error) {
	rt := netgraph.NewRoutingTable(g)
	var paths []netgraph.Path
	maxHops := 0
	attempts := 0
	for len(paths) < k {
		attempts++
		if attempts > 100*k {
			return nil, 0, fmt.Errorf("traffic: could not find %d connected pairs", k)
		}
		u := netgraph.NodeID(rng.Intn(g.NumNodes()))
		v := netgraph.NodeID(rng.Intn(g.NumNodes()))
		if u == v {
			continue
		}
		p, ok := rt.Path(u, v)
		if !ok || len(p) == 0 {
			continue
		}
		paths = append(paths, p)
		if len(p) > maxHops {
			maxHops = len(p)
		}
	}
	proc, err := Paths(m, paths, lambda)
	if err != nil {
		return nil, 0, err
	}
	return proc, maxHops, nil
}

// Hotspot sends the given fraction of the rate through paths ending at
// one hot node, and spreads the rest across random pairs. It models the
// skewed traffic matrices real deployments see.
func Hotspot(rng *rand.Rand, m interference.Model, g *netgraph.Graph, hot netgraph.NodeID, hotFrac float64, k int, lambda float64) (*inject.Stochastic, int, error) {
	if hotFrac < 0 || hotFrac > 1 {
		return nil, 0, fmt.Errorf("traffic: hot fraction %v outside [0,1]", hotFrac)
	}
	rt := netgraph.NewRoutingTable(g)
	var hotPaths, coldPaths []netgraph.Path
	maxHops := 0
	add := func(list *[]netgraph.Path, p netgraph.Path) {
		*list = append(*list, p)
		if len(p) > maxHops {
			maxHops = len(p)
		}
	}
	for v := netgraph.NodeID(0); int(v) < g.NumNodes() && len(hotPaths) < k; v++ {
		if v == hot {
			continue
		}
		if p, ok := rt.Path(v, hot); ok && len(p) > 0 {
			add(&hotPaths, p)
		}
	}
	attempts := 0
	for len(coldPaths) < k {
		attempts++
		if attempts > 100*k {
			break
		}
		u := netgraph.NodeID(rng.Intn(g.NumNodes()))
		v := netgraph.NodeID(rng.Intn(g.NumNodes()))
		if u == v {
			continue
		}
		if p, ok := rt.Path(u, v); ok && len(p) > 0 {
			add(&coldPaths, p)
		}
	}
	if len(hotPaths) == 0 {
		return nil, 0, fmt.Errorf("traffic: no routes into hot node %d", hot)
	}
	// Build the mixture: one generator per path, weighted by the split,
	// then scale the whole mixture to the target rate.
	var gens []inject.Generator
	for _, p := range hotPaths {
		gens = append(gens, inject.Generator{Choices: []inject.PathChoice{
			{Path: p, P: 0.5 * hotFrac / float64(len(hotPaths))},
		}})
	}
	for _, p := range coldPaths {
		gens = append(gens, inject.Generator{Choices: []inject.PathChoice{
			{Path: p, P: 0.5 * (1 - hotFrac) / float64(len(coldPaths))},
		}})
	}
	proc, err := inject.StochasticAtRate(m, gens, lambda)
	if err != nil {
		return nil, 0, err
	}
	return proc, maxHops, nil
}
