// Package capacity computes single-slot capacity references: the
// largest sets of links that can transmit simultaneously under a model.
// The experiments use these as the "optimal protocol" yardstick the
// paper's competitive ratios are measured against — an optimal scheduler
// cannot serve more than one maximum feasible set per slot.
package capacity

import (
	"math/rand"

	"dynsched/internal/interference"
)

// MaxFeasibleExact finds a maximum-cardinality feasible set by branch
// and bound over links 0..n-1. It is exponential in the worst case;
// intended for n ≲ 24 (tests and small OPT references).
func MaxFeasibleExact(m interference.Model, maxLinks int) []int {
	n := m.NumLinks()
	if maxLinks > 0 && maxLinks < n {
		n = maxLinks
	}
	var best []int
	var rec func(next int, chosen []int)
	rec = func(next int, chosen []int) {
		if len(chosen)+(n-next) <= len(best) {
			return // cannot beat the incumbent
		}
		if next == n {
			if len(chosen) > len(best) {
				best = append([]int(nil), chosen...)
			}
			return
		}
		// Branch 1: include next, if the set stays feasible.
		trial := append(chosen, next)
		if interference.SlotFeasible(m, trial) {
			rec(next+1, trial)
		}
		// Branch 2: exclude next.
		rec(next+1, chosen)
	}
	rec(0, nil)
	return best
}

// GreedyFeasible builds a feasible set greedily in the given link
// order, keeping each link whose addition leaves the whole set feasible.
func GreedyFeasible(m interference.Model, order []int) []int {
	var set []int
	for _, e := range order {
		trial := append(append([]int(nil), set...), e)
		if interference.SlotFeasible(m, trial) {
			set = trial
		}
	}
	return set
}

// RandomizedGreedy runs GreedyFeasible over `rounds` random orders and
// returns the best set found — the scalable stand-in for the exact
// search on larger instances.
func RandomizedGreedy(rng *rand.Rand, m interference.Model, rounds int) []int {
	var best []int
	n := m.NumLinks()
	for r := 0; r < rounds; r++ {
		set := GreedyFeasible(m, rng.Perm(n))
		if len(set) > len(best) {
			best = set
		}
	}
	return best
}

// SlotCapacity estimates the model's single-slot capacity (the maximum
// number of simultaneous successes): exact for small networks, best-of
// randomized greedy otherwise.
func SlotCapacity(rng *rand.Rand, m interference.Model) int {
	if m.NumLinks() <= 20 {
		return len(MaxFeasibleExact(m, 0))
	}
	return len(RandomizedGreedy(rng, m, 32))
}

// MeasureOfSet returns the interference measure of serving each link in
// the set once — the paper's lower-bound currency: if every single-slot
// feasible set has measure at most c, no protocol sustains measure rate
// above c.
func MeasureOfSet(m interference.Model, set []int) float64 {
	r := make([]int, m.NumLinks())
	for _, e := range set {
		r[e]++
	}
	return interference.Measure(m, r)
}

// MaxFeasibleMeasure estimates the largest measure of any single-slot
// feasible set — the optimal protocol's per-slot measure throughput.
// Greedy orders are chosen to favour high-measure sets.
func MaxFeasibleMeasure(rng *rand.Rand, m interference.Model, rounds int) float64 {
	best := 0.0
	n := m.NumLinks()
	for r := 0; r < rounds; r++ {
		set := GreedyFeasible(m, rng.Perm(n))
		if v := MeasureOfSet(m, set); v > best {
			best = v
		}
	}
	// Singletons are always feasible when noise permits; consider them too.
	for e := 0; e < n; e++ {
		if interference.SlotFeasible(m, []int{e}) {
			if v := MeasureOfSet(m, []int{e}); v > best {
				best = v
			}
		}
	}
	return best
}
