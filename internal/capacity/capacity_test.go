package capacity

import (
	"math/rand"
	"testing"

	"dynsched/internal/conflict"
	"dynsched/internal/interference"
)

func TestMaxFeasibleExactIdentity(t *testing.T) {
	// Identity model: every subset of distinct links is feasible.
	m := interference.Identity{Links: 6}
	best := MaxFeasibleExact(m, 0)
	if len(best) != 6 {
		t.Fatalf("exact = %d links, want 6", len(best))
	}
}

func TestMaxFeasibleExactMAC(t *testing.T) {
	m := interference.AllOnes{Links: 5}
	best := MaxFeasibleExact(m, 0)
	if len(best) != 1 {
		t.Fatalf("MAC exact = %d links, want 1", len(best))
	}
}

func TestMaxFeasibleExactConflict(t *testing.T) {
	// A 5-cycle conflict graph has independence number 2.
	cg := conflict.NewGraph(5)
	for i := 0; i < 5; i++ {
		if err := cg.AddConflict(i, (i+1)%5); err != nil {
			t.Fatal(err)
		}
	}
	m, err := conflict.NewModel(cg, nil)
	if err != nil {
		t.Fatal(err)
	}
	best := MaxFeasibleExact(m, 0)
	if len(best) != 2 {
		t.Fatalf("C5 exact = %d links, want 2", len(best))
	}
	if !cg.Independent(best) {
		t.Fatalf("exact set %v not independent", best)
	}
}

func TestGreedyNeverBeatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 20; trial++ {
		cg := conflict.Random(rng, 12, 0.3)
		m, err := conflict.NewModel(cg, nil)
		if err != nil {
			t.Fatal(err)
		}
		exact := MaxFeasibleExact(m, 0)
		greedy := RandomizedGreedy(rng, m, 8)
		if len(greedy) > len(exact) {
			t.Fatalf("greedy %d beats exact %d", len(greedy), len(exact))
		}
		if len(greedy) == 0 && len(exact) > 0 {
			t.Fatalf("greedy found nothing, exact found %d", len(exact))
		}
		// Every returned set must actually be feasible.
		if len(greedy) > 0 && !interference.SlotFeasible(m, greedy) {
			t.Fatal("greedy returned infeasible set")
		}
	}
}

func TestSlotCapacitySwitchesStrategies(t *testing.T) {
	rng := rand.New(rand.NewSource(312))
	small := interference.Identity{Links: 8}
	if got := SlotCapacity(rng, small); got != 8 {
		t.Errorf("small capacity = %d, want 8", got)
	}
	large := interference.Identity{Links: 64}
	if got := SlotCapacity(rng, large); got != 64 {
		t.Errorf("large capacity = %d, want 64 (greedy finds all on identity)", got)
	}
}

func TestMeasureOfSet(t *testing.T) {
	m := interference.AllOnes{Links: 4}
	if got := MeasureOfSet(m, []int{0, 2}); got != 2 {
		t.Errorf("measure = %v, want 2", got)
	}
}

func TestMaxFeasibleMeasurePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	m := interference.Identity{Links: 10}
	// For identity, all 10 links fit in a slot, each row sums to 1.
	got := MaxFeasibleMeasure(rng, m, 16)
	if got < 1 {
		t.Errorf("max feasible measure = %v, want ≥ 1", got)
	}
}
