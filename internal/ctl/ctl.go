// Package ctl is the engine room of cmd/dynschedctl: a typed HTTP
// client for a running dynschedd, a parser for its /metrics exposition
// document, and the status / watch / doctor command implementations.
// Everything takes an io.Writer and returns errors rather than
// printing and exiting, so the commands are testable against a real
// in-process server.
package ctl

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"dynsched/api"
)

// Client talks to one dynschedd instance.
type Client struct {
	// BaseURL is the daemon's root URL, scheme included, no trailing
	// slash (NewClient normalizes).
	BaseURL string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// NewClient builds a client for addr, accepting bare host:port forms
// ("127.0.0.1:8080") as well as full URLs.
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{BaseURL: strings.TrimSuffix(addr, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// get issues a GET and decodes the JSON body into v.
func (c *Client) get(ctx context.Context, path string, v any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	return json.NewDecoder(resp.Body).Decode(v)
}

// httpError turns a non-200 response into an error carrying the
// service's own diagnostic when the body is an {"error": ...} document.
func httpError(resp *http.Response) error {
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var doc struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &doc) == nil && doc.Error != "" {
		return fmt.Errorf("%s: %s", resp.Status, doc.Error)
	}
	return fmt.Errorf("%s", resp.Status)
}

// Health fetches /healthz.
func (c *Client) Health(ctx context.Context) (api.Health, error) {
	var h api.Health
	err := c.get(ctx, "/healthz", &h)
	return h, err
}

// Jobs fetches the job list.
func (c *Client) Jobs(ctx context.Context) ([]api.JobView, error) {
	var views []api.JobView
	err := c.get(ctx, "/v1/jobs", &views)
	return views, err
}

// Job fetches one job, result included when done.
func (c *Client) Job(ctx context.Context, id string) (api.JobView, error) {
	var v api.JobView
	err := c.get(ctx, "/v1/jobs/"+id, &v)
	return v, err
}

// Submit posts a submission and reports the created job view and
// whether it was served from the result cache (HTTP 200 vs 202).
func (c *Client) Submit(ctx context.Context, body []byte) (api.JobView, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return api.JobView{}, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return api.JobView{}, false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return api.JobView{}, false, httpError(resp)
	}
	var v api.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return api.JobView{}, false, err
	}
	return v, resp.StatusCode == http.StatusOK, nil
}

// Events follows the job's NDJSON event stream, handing each event to
// fn until the stream ends (terminal event), fn returns an error, or
// ctx is cancelled.
func (c *Client) Events(ctx context.Context, id string, fn func(api.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return httpError(resp)
	}
	scanner := bufio.NewScanner(resp.Body)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		var e api.Event
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			return fmt.Errorf("bad event line %q: %v", scanner.Text(), err)
		}
		if err := fn(e); err != nil {
			return err
		}
	}
	return scanner.Err()
}

// Metrics fetches and parses /metrics.
func (c *Client) Metrics(ctx context.Context) (Metrics, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, httpError(resp)
	}
	return ParseMetrics(resp.Body)
}

// WaitHealthy polls /healthz until it answers or the deadline passes —
// the "daemon just started" helper for scripts and CI.
func (c *Client) WaitHealthy(ctx context.Context, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if _, err := c.Health(ctx); err == nil {
			return nil
		} else if time.Now().After(deadline) {
			return fmt.Errorf("dynschedd at %s not healthy after %s: %w", c.BaseURL, timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
