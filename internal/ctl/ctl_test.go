package ctl

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dynsched"
	"dynsched/api"
	"dynsched/internal/server"
)

// startDaemon boots a real in-process dynschedd (server package, no
// import cycle: server never imports ctl) and returns a Client aimed
// at it.
func startDaemon(t *testing.T, cfg server.Config) *Client {
	t.Helper()
	s, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		cancel()
		s.Wait()
	})
	return NewClient(ts.URL)
}

func sweepSubmission(t *testing.T, name string, slots int64, values ...float64) []byte {
	t.Helper()
	sc := dynsched.NewScenario(name,
		dynsched.WithModel("identity"),
		dynsched.WithTopology("line"),
		dynsched.WithNodes(6), dynsched.WithHops(5),
		dynsched.WithLambda(0.4),
		dynsched.WithAlgorithm("full-parallel"),
		dynsched.WithSlots(slots), dynsched.WithSeed(1),
	)
	sc.Sweep = dynsched.SweepSpec{Axis: "lambda", Values: values}
	body, err := json.Marshal(api.SubmitRequest{Scenario: &sc})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func waitDone(t *testing.T, c *Client, id string) api.JobView {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		v, err := c.Job(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if v.State.Terminal() {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after 30s", id, v.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestNewClientNormalizesAddr(t *testing.T) {
	for addr, want := range map[string]string{
		"127.0.0.1:8080":         "http://127.0.0.1:8080",
		"http://localhost:9/":    "http://localhost:9",
		"https://sched.example/": "https://sched.example",
	} {
		if got := NewClient(addr).BaseURL; got != want {
			t.Errorf("NewClient(%q).BaseURL = %q, want %q", addr, got, want)
		}
	}
}

func TestParseMetrics(t *testing.T) {
	doc := `# HELP dynsched_cache_hits_total Cache hits by tier.
# TYPE dynsched_cache_hits_total counter
dynsched_cache_hits_total{tier="memory"} 7
dynsched_cache_hits_total{tier="disk"} 2
dynsched_queue_depth 3
dynsched_plan_unit_seconds_sum 1.5
dynsched_plan_unit_seconds_count 6
`
	m, err := ParseMetrics(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Get(`dynsched_cache_hits_total{tier="memory"}`); got != 7 {
		t.Errorf("Get(memory hits) = %v, want 7", got)
	}
	if got := m.Get("dynsched_absent_series"); got != 0 {
		t.Errorf("Get(absent) = %v, want 0", got)
	}
	if got := m.Family("dynsched_cache_hits_total"); got != 9 {
		t.Errorf("Family(hits) = %v, want 9", got)
	}
	if got := m.Family("dynsched_queue_depth"); got != 3 {
		t.Errorf("Family(unlabelled) = %v, want 3", got)
	}
	mean, ok := m.HistogramMean("dynsched_plan_unit_seconds")
	if !ok || mean != 0.25 {
		t.Errorf("HistogramMean = %v, %v, want 0.25, true", mean, ok)
	}
	if _, ok := m.HistogramMean("dynsched_sim_slot_seconds"); ok {
		t.Error("HistogramMean of an absent histogram should report ok=false")
	}
	if _, err := ParseMetrics(strings.NewReader("garbage-without-value\n")); err == nil {
		t.Error("ParseMetrics accepted a line with no value")
	}
}

// TestWatchStreamsSweepEndToEnd drives the tentpole loop: submit a
// sweep through the client, Watch it to completion, and check the
// rendered stream (unit progress lines, done summary) plus the cached
// resubmission path.
func TestWatchStreamsSweepEndToEnd(t *testing.T) {
	c := startDaemon(t, server.Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()

	view, cached, err := c.Submit(ctx, sweepSubmission(t, "ctl-watch", 2_000, 0.1, 0.2, 0.3, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("first submission reported cached")
	}
	var buf bytes.Buffer
	if err := Watch(ctx, c, &buf, view.ID); err != nil {
		t.Fatalf("Watch: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		view.ID + " queued",
		view.ID + " started",
		"4/4 units",
		"unit latency: mean",
		" done in ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("watch output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "[##############################]") {
		t.Errorf("watch output missing a full progress bar:\n%s", out)
	}

	// Identical resubmission: served from cache, Watch still works (the
	// terminal done event is in the replayed stream).
	view2, cached2, err := c.Submit(ctx, sweepSubmission(t, "ctl-watch", 2_000, 0.1, 0.2, 0.3, 0.4))
	if err != nil {
		t.Fatal(err)
	}
	if !cached2 {
		t.Fatal("identical resubmission was not served from cache")
	}
	buf.Reset()
	if err := Watch(ctx, c, &buf, view2.ID); err != nil {
		t.Fatalf("Watch of cached job: %v\noutput:\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "(served from cache)") {
		t.Errorf("cached watch output missing cache marker:\n%s", buf.String())
	}

	if err := Watch(ctx, c, &buf, "no-such-job"); err == nil {
		t.Error("Watch of an unknown job did not error")
	}
}

func TestStatusRendersOverview(t *testing.T) {
	c := startDaemon(t, server.Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()
	view, _, err := c.Submit(ctx, sweepSubmission(t, "ctl-status", 2_000, 0.1, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, view.ID)

	var buf bytes.Buffer
	if err := Status(ctx, c, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"dynschedd at " + c.BaseURL,
		"queue    0/8 queued",
		"1 done",
		"cache    ",
		"units    2 run, 0 cached, 0 failed",
		"engine   4000 slots",
		"journal  off (no -journal-dir)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("status output missing %q:\n%s", want, out)
		}
	}
}

func TestDoctorHealthyOnLiveServer(t *testing.T) {
	c := startDaemon(t, server.Config{Workers: 2, QueueDepth: 8})
	ctx := context.Background()
	view, _, err := c.Submit(ctx, sweepSubmission(t, "ctl-doctor", 2_000, 0.1, 0.2))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, c, view.ID)

	var buf bytes.Buffer
	if code := Doctor(ctx, c, &buf, 0); code != DoctorHealthy {
		t.Fatalf("Doctor = %d, want %d\noutput:\n%s", code, DoctorHealthy, buf.String())
	}
	if !strings.Contains(buf.String(), "doctor: healthy") {
		t.Errorf("doctor output missing healthy verdict:\n%s", buf.String())
	}

	// Unreachable daemon: exit 2.
	dead := NewClient("127.0.0.1:1")
	if code := Doctor(ctx, dead, &buf, 0); code != DoctorUnreachable {
		t.Fatalf("Doctor(unreachable) = %d, want %d", code, DoctorUnreachable)
	}
}

// TestDiagnoseHeuristics exercises every doctor heuristic on synthetic
// inputs — each fires on its trigger and stays quiet otherwise.
func TestDiagnoseHeuristics(t *testing.T) {
	names := func(fs []Finding) map[string]bool {
		m := map[string]bool{}
		for _, f := range fs {
			m[f.Name] = true
		}
		return m
	}
	warns := func(fs []Finding) int {
		n := 0
		for _, f := range fs {
			if f.Warn {
				n++
			}
		}
		return n
	}

	t.Run("healthy", func(t *testing.T) {
		fs := Diagnose(api.Health{OK: true, QueueCapacity: 8, Workers: 2},
			Metrics{"dynsched_cache_hits_total": 10, "dynsched_cache_misses_total": 10}, nil, nil)
		if len(fs) != 0 {
			t.Fatalf("healthy daemon produced findings: %+v", fs)
		}
	})
	t.Run("queue-saturated", func(t *testing.T) {
		fs := Diagnose(api.Health{Queued: 8, QueueCapacity: 8}, Metrics{}, nil, nil)
		if !names(fs)["queue-saturated"] || warns(fs) == 0 {
			t.Fatalf("findings: %+v", fs)
		}
	})
	t.Run("draining", func(t *testing.T) {
		fs := Diagnose(api.Health{Draining: true, QueueCapacity: 8}, Metrics{}, nil, nil)
		if !names(fs)["draining"] {
			t.Fatalf("findings: %+v", fs)
		}
	})
	t.Run("cache-cold", func(t *testing.T) {
		m := Metrics{`dynsched_cache_hits_total{tier="memory"}`: 2, "dynsched_cache_misses_total": 28}
		fs := Diagnose(api.Health{QueueCapacity: 8}, m, nil, nil)
		if !names(fs)["cache-cold"] {
			t.Fatalf("findings: %+v", fs)
		}
		// Below the lookup floor the ratio is not trusted.
		cold := Metrics{"dynsched_cache_misses_total": 10}
		if fs := Diagnose(api.Health{QueueCapacity: 8}, cold, nil, nil); names(fs)["cache-cold"] {
			t.Fatalf("cache-cold fired under %d lookups: %+v", minLookupsForRatio, fs)
		}
	})
	t.Run("cache-thrash", func(t *testing.T) {
		m := Metrics{
			`dynsched_cache_evictions_total{tier="memory"}`: 50,
			`dynsched_cache_hits_total{tier="memory"}`:      40,
			"dynsched_cache_misses_total":                   10,
		}
		fs := Diagnose(api.Health{QueueCapacity: 8}, m, nil, nil)
		if !names(fs)["cache-thrash"] {
			t.Fatalf("findings: %+v", fs)
		}
	})
	t.Run("stuck-job", func(t *testing.T) {
		running := api.JobView{ID: "j1", State: api.StateRunning, UnitsDone: 2, UnitsTotal: 4, Events: 9}
		fs := Diagnose(api.Health{QueueCapacity: 8}, Metrics{},
			[]api.JobView{running}, []api.JobView{running})
		if !names(fs)["stuck-job"] {
			t.Fatalf("findings: %+v", fs)
		}
		moved := running
		moved.Events = 12
		if fs := Diagnose(api.Health{QueueCapacity: 8}, Metrics{},
			[]api.JobView{running}, []api.JobView{moved}); names(fs)["stuck-job"] {
			t.Fatalf("stuck-job fired on a progressing job: %+v", fs)
		}
	})
	t.Run("runner-starved", func(t *testing.T) {
		h := api.Health{QueueCapacity: 8, Fleet: &api.FleetHealth{PendingUnits: 4, Runners: 0}}
		fs := Diagnose(h, Metrics{}, nil, nil)
		if !names(fs)["runner-starved"] || warns(fs) == 0 {
			t.Fatalf("findings: %+v", fs)
		}
		// With a runner on the roster the parked units are just backlog.
		h.Fleet.Runners = 1
		if fs := Diagnose(h, Metrics{}, nil, nil); names(fs)["runner-starved"] {
			t.Fatalf("runner-starved fired with a live runner: %+v", fs)
		}
	})
	t.Run("lease-thrash", func(t *testing.T) {
		h := api.Health{QueueCapacity: 8, Fleet: &api.FleetHealth{
			Runners: 2, LeasedTotal: 20, ReLeased: 5,
		}}
		fs := Diagnose(h, Metrics{}, nil, nil)
		if !names(fs)["lease-thrash"] {
			t.Fatalf("findings: %+v", fs)
		}
		// Below the grant floor one expiry is startup noise, not thrash.
		h.Fleet.LeasedTotal, h.Fleet.ReLeased = 4, 2
		if fs := Diagnose(h, Metrics{}, nil, nil); names(fs)["lease-thrash"] {
			t.Fatalf("lease-thrash fired under %d grants: %+v", minLeasesForRatio, fs)
		}
		// At exactly the 20%% boundary the ratio is tolerated.
		h.Fleet.LeasedTotal, h.Fleet.ReLeased = 20, 4
		if fs := Diagnose(h, Metrics{}, nil, nil); names(fs)["lease-thrash"] {
			t.Fatalf("lease-thrash fired at the boundary ratio: %+v", fs)
		}
	})
	t.Run("straggler", func(t *testing.T) {
		h := api.Health{QueueCapacity: 8, Fleet: &api.FleetHealth{
			Runners: 3, Merged: 30,
			RunnerDetail: []api.RunnerHealth{
				{ID: "fast-1", UnitsPerSec: 4.0},
				{ID: "fast-2", UnitsPerSec: 4.4},
				{ID: "slow", UnitsPerSec: 0.5},
			},
		}}
		fs := Diagnose(h, Metrics{}, nil, nil)
		if !names(fs)["straggler"] {
			t.Fatalf("findings: %+v", fs)
		}
		for _, f := range fs {
			if f.Name == "straggler" && !strings.Contains(f.Detail, "slow") {
				t.Fatalf("straggler finding does not name the slow runner: %q", f.Detail)
			}
		}
		// Too few merges: per-runner rates are not comparable yet.
		h.Fleet.Merged = 3
		if fs := Diagnose(h, Metrics{}, nil, nil); names(fs)["straggler"] {
			t.Fatalf("straggler fired under %d merges: %+v", minMergedForStraggler, fs)
		}
	})
	t.Run("journal-torn-and-recovery", func(t *testing.T) {
		h := api.Health{QueueCapacity: 8, Journal: &api.JournalHealth{
			ReplayTorn: true, CleanShutdown: false, ReplayedRecords: 12, RecoveredJobs: 2,
		}}
		fs := Diagnose(h, Metrics{}, nil, nil)
		got := names(fs)
		if !got["journal-torn"] || !got["unclean-shutdown"] || !got["recovered-jobs"] {
			t.Fatalf("findings: %+v", fs)
		}
		// Recovery flags are notes, not warnings — only the torn tail warns.
		if warns(fs) != 1 {
			t.Fatalf("want exactly 1 warning (journal-torn), got %d: %+v", warns(fs), fs)
		}
	})
}
