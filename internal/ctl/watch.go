package ctl

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"dynsched/api"
)

// barWidth is the progress bar's character width.
const barWidth = 30

// bar renders `[#####.....]` for done of total.
func bar(done, total int64) string {
	if total <= 0 {
		return "[" + strings.Repeat(".", barWidth) + "]"
	}
	filled := int(done * barWidth / total)
	if filled > barWidth {
		filled = barWidth
	}
	return "[" + strings.Repeat("#", filled) + strings.Repeat(".", barWidth-filled) + "]"
}

// Watch follows a job's event stream to its terminal event, rendering
// slot-level progress for single runs and unit-level progress for
// plans, then a final summary (elided-event count included when the
// stream was thinned). It returns an error when the job failed, so the
// command's exit code reflects the outcome.
func Watch(ctx context.Context, c *Client, w io.Writer, id string) error {
	if _, err := c.Job(ctx, id); err != nil {
		return fmt.Errorf("looking up job %s: %w", id, err)
	}
	started := time.Now()
	var terminal api.Event
	err := c.Events(ctx, id, func(e api.Event) error {
		switch e.Type {
		case "queued", "started":
			fmt.Fprintf(w, "%s %s\n", e.Job, e.Type)
		case "progress":
			p := e.Progress
			if p == nil {
				break
			}
			fmt.Fprintf(w, "%s %s %d/%d slots, %d delivered, %d in flight",
				e.Job, bar(p.Slots, p.TotalSlots), p.Slots, p.TotalSlots, p.Delivered, p.InFlight)
			if p.Latency.N > 0 {
				fmt.Fprintf(w, ", latency mean %.1f max %.0f", p.Latency.Mean, p.Latency.Max)
			}
			fmt.Fprintln(w)
		case "unit":
			u := e.Unit
			if u == nil {
				break
			}
			tag := "ran"
			if u.Cached {
				tag = "cached"
			}
			fmt.Fprintf(w, "%s %s %d/%d units (%d cached) — unit %d %s\n",
				e.Job, bar(int64(u.UnitsDone), int64(u.UnitsTotal)), u.UnitsDone, u.UnitsTotal, u.UnitsCached, u.Index, tag)
		case "done", "failed", "cancelled":
			terminal = e
		}
		return nil
	})
	if err != nil {
		return err
	}
	if terminal.Type == "" {
		return fmt.Errorf("event stream for %s ended without a terminal event", id)
	}

	view, err := c.Job(ctx, id)
	if err != nil {
		return fmt.Errorf("fetching final state: %w", err)
	}
	fmt.Fprintf(w, "%s %s in %s", id, terminal.Type, time.Since(started).Round(time.Millisecond))
	if terminal.Cached {
		fmt.Fprint(w, " (served from cache)")
	}
	if view.UnitsTotal > 0 {
		fmt.Fprintf(w, "; %d/%d units, %d cached", view.UnitsDone, view.UnitsTotal, view.UnitsCached)
	}
	if view.EventsDropped > 0 {
		fmt.Fprintf(w, "; %d events elided from the stream", view.EventsDropped)
	}
	if view.Recovered {
		fmt.Fprint(w, "; recovered after a restart")
		if view.ResumedFromSlot > 0 {
			fmt.Fprintf(w, " (resumed from slot %d)", view.ResumedFromSlot)
		}
	}
	fmt.Fprintln(w)
	// A live latency summary from the shared instruments — how long
	// units take across the whole daemon, this job included.
	if m, err := c.Metrics(ctx); err == nil {
		if mean, ok := m.HistogramMean("dynsched_plan_unit_seconds"); ok && view.UnitsTotal > 0 {
			fmt.Fprintf(w, "unit latency: mean %.3fs across %.0f fresh units daemon-wide\n",
				mean, m.Get("dynsched_plan_unit_seconds_count"))
		}
	}
	switch terminal.Type {
	case "failed":
		return fmt.Errorf("job %s failed: %s", id, view.Error)
	case "cancelled":
		return fmt.Errorf("job %s was cancelled", id)
	}
	return nil
}
