package ctl

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"
)

// Fleet renders the coordinator's runner fleet: the lease-table
// occupancy and merge counters, then one row per runner from the
// health document's RunnerDetail section.
func Fleet(ctx context.Context, c *Client, w io.Writer) error {
	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("fetching health: %w", err)
	}
	f := h.Fleet
	if f == nil || (f.Runners == 0 && f.LeasedTotal == 0 && f.PendingUnits == 0) {
		fmt.Fprintf(w, "no fleet: no runner has joined %s (start one with: dynschedd -join <url>)\n", c.BaseURL)
		return nil
	}
	fmt.Fprintf(w, "fleet at %s\n", c.BaseURL)
	fmt.Fprintf(w, "  runners  %d on the roster\n", f.Runners)
	fmt.Fprintf(w, "  units    %d pending, %d leased out\n", f.PendingUnits, f.Leased)
	fmt.Fprintf(w, "  leases   %d granted (%d re-grants of expired leases)\n", f.LeasedTotal, f.ReLeased)
	fmt.Fprintf(w, "  reports  %d merged, %d rejected as stale\n", f.Merged, f.Rejected)
	if len(f.RunnerDetail) == 0 {
		return nil
	}
	rows := append(f.RunnerDetail[:0:0], f.RunnerDetail...)
	sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
	fmt.Fprintf(w, "  %-24s %8s %8s %12s %10s\n", "RUNNER", "LEASED", "DONE", "UNITS/SEC", "IDLE")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-24s %8d %8d %12.2f %10s\n",
			r.ID, r.Leased, r.UnitsDone, r.UnitsPerSec,
			(time.Duration(r.IdleMs) * time.Millisecond).Truncate(time.Millisecond))
	}
	return nil
}
