package ctl

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"dynsched/api"
)

// Finding is one doctor diagnostic.
type Finding struct {
	// Warn marks a problem; false is an informational note.
	Warn bool
	// Name is the heuristic's short slug (queue-saturated, cache-cold,
	// cache-thrash, stuck-job, journal-torn, unclean-shutdown, ...).
	Name string
	// Detail is the human-readable explanation with the numbers that
	// fired the heuristic.
	Detail string
}

// Doctor exit codes.
const (
	DoctorHealthy     = 0
	DoctorWarnings    = 1
	DoctorUnreachable = 2
)

// Doctor runs the health heuristics against a live daemon: fetch
// health and metrics, sample the job list twice sampleGap apart (to
// tell a stuck running job from a slow one), and render a verdict. It
// returns the command's exit code: 0 healthy, 1 warnings, 2 when the
// daemon cannot be diagnosed at all.
func Doctor(ctx context.Context, c *Client, w io.Writer, sampleGap time.Duration) int {
	h, err := c.Health(ctx)
	if err != nil {
		fmt.Fprintf(w, "doctor: cannot reach dynschedd at %s: %v\n", c.BaseURL, err)
		return DoctorUnreachable
	}
	m, err := c.Metrics(ctx)
	if err != nil {
		// An old daemon without /metrics still gets the health-only
		// heuristics.
		m = Metrics{}
	}
	first, err := c.Jobs(ctx)
	if err != nil {
		fmt.Fprintf(w, "doctor: listing jobs: %v\n", err)
		return DoctorUnreachable
	}
	second := first
	if anyRunning(first) && sampleGap > 0 {
		select {
		case <-ctx.Done():
			fmt.Fprintf(w, "doctor: %v\n", ctx.Err())
			return DoctorUnreachable
		case <-time.After(sampleGap):
		}
		if second, err = c.Jobs(ctx); err != nil {
			fmt.Fprintf(w, "doctor: re-listing jobs: %v\n", err)
			return DoctorUnreachable
		}
	}

	findings := Diagnose(h, m, first, second)
	warnings := 0
	for _, f := range findings {
		mark := "note"
		if f.Warn {
			mark = "WARN"
			warnings++
		}
		fmt.Fprintf(w, "%s  %-17s %s\n", mark, f.Name, f.Detail)
	}
	if warnings == 0 {
		fmt.Fprintln(w, "doctor: healthy")
		return DoctorHealthy
	}
	fmt.Fprintf(w, "doctor: %d warning(s)\n", warnings)
	return DoctorWarnings
}

func anyRunning(jobs []api.JobView) bool {
	for _, j := range jobs {
		if j.State == api.StateRunning {
			return true
		}
	}
	return false
}

// minLookupsForRatio is how many cache lookups the hit-ratio heuristic
// needs before it trusts the ratio — a cold daemon's first misses are
// not a finding.
const minLookupsForRatio = 20

// minLeasesForRatio is how many fleet lease grants the lease-thrash
// heuristic needs before it trusts the re-grant ratio: one expired
// lease on a two-lease fleet is startup noise, not thrash.
const minLeasesForRatio = 10

// minMergedForStraggler is how many merged fleet reports the straggler
// heuristic needs before per-runner throughput comparisons mean
// anything.
const minMergedForStraggler = 10

// median returns the median of vs (vs is re-ordered in place).
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sort.Float64s(vs)
	mid := len(vs) / 2
	if len(vs)%2 == 1 {
		return vs[mid]
	}
	return (vs[mid-1] + vs[mid]) / 2
}

// Diagnose applies the doctor heuristics to already-fetched state:
// health, parsed metrics, and two job-list samples taken a moment
// apart (pass the same slice twice when nothing was running). Pure, so
// each heuristic is testable without a server.
func Diagnose(h api.Health, m Metrics, first, second []api.JobView) []Finding {
	var out []Finding

	if h.QueueCapacity > 0 && h.Queued >= h.QueueCapacity {
		out = append(out, Finding{Warn: true, Name: "queue-saturated",
			Detail: fmt.Sprintf("%d/%d jobs queued — submissions are being rejected with 503; add workers or widen -queue", h.Queued, h.QueueCapacity)})
	}
	if h.Draining {
		out = append(out, Finding{Warn: true, Name: "draining",
			Detail: "the daemon is shutting down and rejecting submissions"})
	}

	hits, misses := m.Family("dynsched_cache_hits_total"), m.Get("dynsched_cache_misses_total")
	if lookups := hits + misses; lookups >= minLookupsForRatio {
		if ratio := hits / lookups; ratio < 0.2 {
			out = append(out, Finding{Warn: true, Name: "cache-cold",
				Detail: fmt.Sprintf("%.0f%% hit ratio over %.0f lookups — resubmissions are not finding cached results", 100*ratio, lookups)})
		}
	}
	if evictions := m.Family("dynsched_cache_evictions_total"); evictions > 0 && evictions > hits {
		out = append(out, Finding{Warn: true, Name: "cache-thrash",
			Detail: fmt.Sprintf("%.0f evictions against %.0f hits — the cache is cycling entries faster than it serves them; raise -cache or -cache-disk-max", evictions, hits)})
	}

	// A running job whose unit counter AND event log did not move
	// between the two samples is stuck (a live simulation publishes
	// progress events; a live plan advances unitsDone).
	prev := map[string]api.JobView{}
	for _, j := range first {
		prev[j.ID] = j
	}
	for _, j := range second {
		p, ok := prev[j.ID]
		if !ok || j.State != api.StateRunning || p.State != api.StateRunning {
			continue
		}
		if j.UnitsDone == p.UnitsDone && j.Events == p.Events {
			out = append(out, Finding{Warn: true, Name: "stuck-job",
				Detail: fmt.Sprintf("%s is running but neither its unit counter (%d/%d) nor its event log moved between samples", j.ID, j.UnitsDone, j.UnitsTotal)})
		}
	}

	if f := h.Fleet; f != nil {
		if f.PendingUnits > 0 && f.Runners == 0 {
			out = append(out, Finding{Warn: true, Name: "runner-starved",
				Detail: fmt.Sprintf("%d plan unit(s) parked for the fleet with zero runners on the roster — start runners (dynschedd -join) or avoid -fleet-local=-1", f.PendingUnits)})
		}
		if f.LeasedTotal >= minLeasesForRatio {
			if ratio := float64(f.ReLeased) / float64(f.LeasedTotal); ratio > 0.2 {
				out = append(out, Finding{Warn: true, Name: "lease-thrash",
					Detail: fmt.Sprintf("%d of %d lease grants were re-grants of expired leases (%.0f%%) — runners are dying or too slow for -lease-expiry; raise it or shrink -batch-max", f.ReLeased, f.LeasedTotal, 100*ratio)})
			}
		}
		if len(f.RunnerDetail) >= 2 && f.Merged >= minMergedForStraggler {
			rates := make([]float64, 0, len(f.RunnerDetail))
			for _, r := range f.RunnerDetail {
				rates = append(rates, r.UnitsPerSec)
			}
			if med := median(rates); med > 0 {
				for _, r := range f.RunnerDetail {
					if r.UnitsPerSec < med/4 {
						out = append(out, Finding{Warn: true, Name: "straggler",
							Detail: fmt.Sprintf("runner %s completes %.2f unit/s against a fleet median of %.2f — below a quarter of the fleet; check its host or drop it", r.ID, r.UnitsPerSec, med)})
					}
				}
			}
		}
	}

	if j := h.Journal; j != nil {
		if j.ReplayTorn {
			out = append(out, Finding{Warn: true, Name: "journal-torn",
				Detail: "the replayed journal ended in a torn record (dropped) — the previous process died mid-append"})
		}
		if !j.CleanShutdown && j.ReplayedRecords > 0 {
			out = append(out, Finding{Name: "unclean-shutdown",
				Detail: fmt.Sprintf("the previous process left no shutdown marker; recovery re-enqueued %d job(s)", j.RecoveredJobs)})
		}
		if j.RecoveredJobs > 0 {
			out = append(out, Finding{Name: "recovered-jobs",
				Detail: fmt.Sprintf("%d job(s) recovered from the journal this boot", j.RecoveredJobs)})
		}
	}
	return out
}
