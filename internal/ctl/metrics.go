package ctl

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Metrics is a parsed Prometheus text exposition document: every
// sample line keyed by its full series name, labels included
// (`dynsched_cache_hits_total{tier="memory"}` and
// `dynsched_queue_depth` are both keys).
type Metrics map[string]float64

// ParseMetrics reads a text exposition document. Comment lines (#
// HELP, # TYPE) are skipped; sample lines must be `series value`.
func ParseMetrics(r io.Reader) (Metrics, error) {
	m := Metrics{}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	for scanner.Scan() {
		line := scanner.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return nil, fmt.Errorf("unparseable metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("unparseable value in %q: %v", line, err)
		}
		m[line[:i]] = v
	}
	if err := scanner.Err(); err != nil {
		return nil, err
	}
	return m, nil
}

// Get returns the series' value (0 when absent) — pass the full series
// name, labels included.
func (m Metrics) Get(series string) float64 { return m[series] }

// Family sums every series of the named family across its label
// combinations: Family("dynsched_cache_hits_total") adds the memory
// and disk tiers. A histogram's _bucket/_sum/_count series are their
// own families and are not folded in.
func (m Metrics) Family(name string) float64 {
	sum := 0.0
	for series, v := range m {
		if series == name || strings.HasPrefix(series, name+"{") {
			sum += v
		}
	}
	return sum
}

// HistogramMean returns a histogram family's mean observation
// (sum/count), with ok=false when it has no observations.
func (m Metrics) HistogramMean(name string) (mean float64, ok bool) {
	count := m[name+"_count"]
	if count == 0 {
		return 0, false
	}
	return m[name+"_sum"] / count, true
}
