package ctl

import (
	"context"
	"fmt"
	"io"

	"dynsched/api"
)

// Status renders a one-screen overview of the daemon: queue and worker
// occupancy, jobs by state, cache tiers, throughput counters from
// /metrics, and the journal's durability state.
func Status(ctx context.Context, c *Client, w io.Writer) error {
	h, err := c.Health(ctx)
	if err != nil {
		return fmt.Errorf("fetching health: %w", err)
	}
	jobs, err := c.Jobs(ctx)
	if err != nil {
		return fmt.Errorf("listing jobs: %w", err)
	}
	byState := map[api.State]int{}
	for _, j := range jobs {
		byState[j.State]++
	}

	fmt.Fprintf(w, "dynschedd at %s\n", c.BaseURL)
	fmt.Fprintf(w, "  queue    %d/%d queued, %d/%d workers busy", h.Queued, h.QueueCapacity, h.WorkersBusy, h.Workers)
	if h.Draining {
		fmt.Fprint(w, "  [draining]")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  jobs     %d registered (%d queued, %d running, %d done, %d failed, %d cancelled)\n",
		h.Jobs, byState[api.StateQueued], byState[api.StateRunning], byState[api.StateDone],
		byState[api.StateFailed], byState[api.StateCancelled])
	fmt.Fprintf(w, "  cache    %d in memory, %d on disk\n", h.Cached, h.CachedDisk)

	// The counters are best-effort decoration: a daemon predating
	// /metrics still gets queue/jobs/cache/journal lines.
	if m, err := c.Metrics(ctx); err == nil {
		hits, misses := m.Family("dynsched_cache_hits_total"), m.Get("dynsched_cache_misses_total")
		if lookups := hits + misses; lookups > 0 {
			fmt.Fprintf(w, "  lookups  %.0f hits, %.0f misses (%.0f%% hit ratio)\n", hits, misses, 100*hits/lookups)
		}
		fmt.Fprintf(w, "  units    %.0f run, %.0f cached, %.0f failed",
			m.Get(`dynsched_plan_units_total{outcome="run"}`),
			m.Get(`dynsched_plan_units_total{outcome="cached"}`),
			m.Get(`dynsched_plan_units_total{outcome="failed"}`))
		if mean, ok := m.HistogramMean("dynsched_plan_unit_seconds"); ok {
			fmt.Fprintf(w, " (mean %.3fs/unit)", mean)
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  engine   %.0f slots, %.0f injected, %.0f delivered",
			m.Get("dynsched_sim_slots_total"), m.Get("dynsched_sim_injected_total"), m.Get("dynsched_sim_delivered_total"))
		if mean, ok := m.HistogramMean("dynsched_sim_slot_seconds"); ok {
			fmt.Fprintf(w, " (sampled %.1fµs/slot)", mean*1e6)
		}
		fmt.Fprintln(w)
	}

	if h.Journal != nil {
		j := h.Journal
		fmt.Fprintf(w, "  journal  %d segment(s), %d record(s), %d bytes; replayed %d record(s)",
			j.Segments, j.Records, j.Bytes, j.ReplayedRecords)
		if j.RecoveredJobs > 0 {
			fmt.Fprintf(w, ", recovered %d job(s)", j.RecoveredJobs)
		}
		if j.ReplayTorn {
			fmt.Fprint(w, ", torn tail dropped")
		}
		fmt.Fprintf(w, " (clean shutdown: %v)\n", j.CleanShutdown)
	} else {
		fmt.Fprintln(w, "  journal  off (no -journal-dir)")
	}
	return nil
}
