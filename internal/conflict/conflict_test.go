package conflict

import (
	"math/rand"
	"testing"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	if err := g.AddConflict(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddConflict(1, 2); err != nil {
		t.Fatal(err)
	}
	if !g.Conflicts(0, 1) || !g.Conflicts(1, 0) {
		t.Error("conflict not symmetric")
	}
	if g.Conflicts(0, 2) {
		t.Error("phantom conflict")
	}
	if !g.Conflicts(3, 3) {
		t.Error("self-conflict should hold")
	}
	if err := g.AddConflict(0, 9); err == nil {
		t.Error("out-of-range conflict accepted")
	}
	if err := g.AddConflict(2, 2); err != nil {
		t.Errorf("self-conflict add should be a no-op, got %v", err)
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Error("degrees wrong")
	}
}

func TestIndependent(t *testing.T) {
	g := NewGraph(4)
	_ = g.AddConflict(0, 1)
	if !g.Independent([]int{0, 2, 3}) {
		t.Error("independent set rejected")
	}
	if g.Independent([]int{0, 1}) {
		t.Error("conflicting set accepted")
	}
	if g.Independent([]int{2, 2}) {
		t.Error("duplicate set accepted (self-conflict)")
	}
}

func TestDegeneracyOrderIsPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	g := Random(rng, 30, 0.2)
	order := g.DegeneracyOrder()
	seen := make([]bool, 30)
	for _, v := range order {
		if v < 0 || v >= 30 || seen[v] {
			t.Fatalf("order not a permutation: %v", order)
		}
		seen[v] = true
	}
}

func TestRhoOnKnownGraphs(t *testing.T) {
	// A path a-b-c: any ordering certifies ρ = 1 with the degeneracy
	// order (each vertex has ≤ 2 earlier neighbours, at most 1
	// independent among them... for a path, earlier neighbours are
	// never adjacent to each other, so ρ ≤ 2; degeneracy order gives 1).
	path := NewGraph(3)
	_ = path.AddConflict(0, 1)
	_ = path.AddConflict(1, 2)
	rho := path.Rho(path.DegeneracyOrder(), 22)
	if rho < 1 || rho > 2 {
		t.Errorf("path rho = %d, want 1 or 2", rho)
	}

	// Complete graph K5: every earlier neighbourhood is a clique, so
	// ρ = 1 under any ordering.
	k5 := NewGraph(5)
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			_ = k5.AddConflict(i, j)
		}
	}
	if rho := k5.Rho(k5.DegeneracyOrder(), 22); rho != 1 {
		t.Errorf("K5 rho = %d, want 1", rho)
	}

	// Star K1,4 with the hub last: earlier neighbours of the hub are the
	// 4 independent leaves, so that ordering certifies only ρ = 4; the
	// degeneracy order puts the hub first and certifies ρ = 1.
	star := NewGraph(5)
	for leaf := 1; leaf < 5; leaf++ {
		_ = star.AddConflict(0, leaf)
	}
	worst := []int{1, 2, 3, 4, 0}
	if rho := star.Rho(worst, 22); rho != 4 {
		t.Errorf("star worst-order rho = %d, want 4", rho)
	}
	if rho := star.Rho(star.DegeneracyOrder(), 22); rho != 1 {
		t.Errorf("star degeneracy rho = %d, want 1", rho)
	}

	// Empty graph: rho = 0.
	empty := NewGraph(4)
	if rho := empty.Rho(empty.DegeneracyOrder(), 22); rho != 0 {
		t.Errorf("empty rho = %d, want 0", rho)
	}
}

func TestRhoGreedyFallbackConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	g := Random(rng, 24, 0.3)
	order := g.DegeneracyOrder()
	exact := g.Rho(order, 30)
	greedy := g.Rho(order, 0) // force greedy everywhere
	if greedy > exact {
		t.Errorf("greedy rho %d exceeds exact %d", greedy, exact)
	}
}

func TestNodeConstraint(t *testing.T) {
	g := netgraph.New(4)
	a := g.MustAddLink(0, 1)
	b := g.MustAddLink(1, 2) // shares node 1 with a
	c := g.MustAddLink(2, 3) // shares node 2 with b
	cg := NodeConstraint(g)
	if !cg.Conflicts(int(a), int(b)) || !cg.Conflicts(int(b), int(c)) {
		t.Error("shared-endpoint links should conflict")
	}
	if cg.Conflicts(int(a), int(c)) {
		t.Error("disjoint links should not conflict")
	}
}

func TestDistance2Matching(t *testing.T) {
	// Line 0-1-2-3-4: links (0,1) and (2,3) have adjacent endpoints
	// (1 adjacent to 2), so they conflict at distance 2; links (0,1) and
	// (3,4) do not.
	g := netgraph.New(5)
	a := g.MustAddLink(0, 1)
	b := g.MustAddLink(1, 2)
	c := g.MustAddLink(2, 3)
	d := g.MustAddLink(3, 4)
	cg := Distance2Matching(g)
	if !cg.Conflicts(int(a), int(b)) {
		t.Error("adjacent links should conflict")
	}
	if !cg.Conflicts(int(a), int(c)) {
		t.Error("distance-2 links should conflict")
	}
	if cg.Conflicts(int(a), int(d)) {
		t.Error("distance-3 links should not conflict")
	}
}

func TestProtocolModel(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := netgraph.RandomPairs(rng, 10, 20, 1, 2)
	cg := ProtocolModel(g, 1)
	// Sanity: nearby pairs conflict, far pairs generally do not, and
	// the construction is symmetric by definition.
	for i := 0; i < 10; i++ {
		for j := 0; j < 10; j++ {
			if cg.Conflicts(i, j) != cg.Conflicts(j, i) {
				t.Fatalf("asymmetric conflicts %d,%d", i, j)
			}
		}
	}
}

func TestModelWeightsAndSuccesses(t *testing.T) {
	cg := NewGraph(3)
	_ = cg.AddConflict(0, 1)
	m, err := NewModel(cg, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := interference.ValidateWeights(m); err != nil {
		t.Fatal(err)
	}
	// π = (0,1,2): W[1][0] = 1 (0 earlier, conflicts), W[0][1] = 0.
	if m.Weight(1, 0) != 1 {
		t.Error("W[1][0] should be 1")
	}
	if m.Weight(0, 1) != 0 {
		t.Error("W[0][1] should be 0 (later in order)")
	}
	if m.Weight(0, 2) != 0 || m.Weight(2, 0) != 0 {
		t.Error("non-conflicting links should have weight 0")
	}
	// Successes: 0 and 1 conflict → both fail together; 2 independent.
	s := m.Successes([]int{0, 1, 2})
	if s[0] || s[1] || !s[2] {
		t.Errorf("successes = %v", s)
	}
	if s := m.Successes([]int{0, 2}); !s[0] || !s[1] {
		t.Errorf("independent pair failed: %v", s)
	}
	// Duplicates fail.
	if s := m.Successes([]int{2, 2}); s[0] || s[1] {
		t.Error("duplicate succeeded")
	}
}

func TestNewModelRejectsBadOrder(t *testing.T) {
	cg := NewGraph(3)
	if _, err := NewModel(cg, []int{0, 1}); err == nil {
		t.Error("short order accepted")
	}
	if _, err := NewModel(cg, []int{0, 0, 1}); err == nil {
		t.Error("non-permutation accepted")
	}
	if m, err := NewModel(cg, nil); err != nil || m == nil {
		t.Errorf("nil order (degeneracy default) rejected: %v", err)
	}
}

// TestMeasureBoundsIndependentSets verifies the defining property the
// ρ-competitiveness argument needs: a feasible (independent) set has
// measure at most ρ at every link... concretely, for any independent set
// S and any link e ∈ S, the number of members conflicting with e that
// come earlier is at most ρ.
func TestMeasureBoundsIndependentSets(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	g := Random(rng, 20, 0.25)
	order := g.DegeneracyOrder()
	rho := g.Rho(order, 30)
	m, err := NewModel(g, order)
	if err != nil {
		t.Fatal(err)
	}
	// Sample independent sets greedily and check the measure bound.
	for trial := 0; trial < 40; trial++ {
		perm := rng.Perm(20)
		var set []int
		for _, v := range perm {
			ok := true
			for _, u := range set {
				if g.Conflicts(u, v) {
					ok = false
					break
				}
			}
			if ok {
				set = append(set, v)
			}
		}
		r := interference.Requests(20, set)
		meas := interference.Measure(m, r)
		// Each member contributes 1 to itself; earlier conflicting
		// members are independent among themselves, so ≤ ρ of them.
		if meas > float64(rho+1) {
			t.Fatalf("independent set measure %v exceeds rho+1 = %d", meas, rho+1)
		}
	}
}
