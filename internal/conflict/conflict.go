// Package conflict implements the conflict-graph interference models of
// Section 7.2: vertices are communication links and an edge indicates
// that two links may not transmit simultaneously. The inductive
// independence number ρ of the conflict graph (Definition 1) bounds how
// far any protocol's injection rate can exceed the interference measure,
// and the W matrix derived from an inductive-independence ordering makes
// the paper's transformation O(ρ·log m)-competitive.
package conflict

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"dynsched/internal/interference"
	"dynsched/internal/netgraph"
)

// Graph is an undirected conflict graph over links 0..n-1.
type Graph struct {
	n   int
	adj []map[int]bool
	// version counts structural mutations; Model uses it to keep its
	// CSR weight cache coherent with the live graph.
	version int64
}

// NewGraph creates a conflict graph over n links with no conflicts.
func NewGraph(n int) *Graph {
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = make(map[int]bool)
	}
	return &Graph{n: n, adj: adj}
}

// NumLinks returns the number of links (vertices).
func (g *Graph) NumLinks() int { return g.n }

// AddConflict records that links e and e2 conflict. Self-conflicts are
// ignored (a link always conflicts with itself implicitly).
func (g *Graph) AddConflict(e, e2 int) error {
	if e < 0 || e >= g.n || e2 < 0 || e2 >= g.n {
		return fmt.Errorf("conflict: pair (%d,%d) out of range [0,%d)", e, e2, g.n)
	}
	if e == e2 {
		return nil
	}
	if !g.adj[e][e2] {
		g.version++
	}
	g.adj[e][e2] = true
	g.adj[e2][e] = true
	return nil
}

// Conflicts reports whether e and e2 conflict. A link conflicts with
// itself.
func (g *Graph) Conflicts(e, e2 int) bool {
	if e == e2 {
		return true
	}
	return g.adj[e][e2]
}

// Degree returns the number of conflicting neighbours of e.
func (g *Graph) Degree(e int) int { return len(g.adj[e]) }

// Neighbors returns the conflicting neighbours of e in ascending order.
func (g *Graph) Neighbors(e int) []int {
	out := make([]int, 0, len(g.adj[e]))
	for v := range g.adj[e] {
		out = append(out, v)
	}
	sort.Ints(out)
	return out
}

// Independent reports whether the given links are pairwise non-conflicting
// and duplicate-free.
func (g *Graph) Independent(set []int) bool {
	for i := 0; i < len(set); i++ {
		for j := i + 1; j < len(set); j++ {
			if g.Conflicts(set[i], set[j]) {
				return false
			}
		}
	}
	return true
}

// DegeneracyOrder returns a smallest-degree-last ordering: repeatedly
// remove a minimum-degree vertex; the removal sequence reversed is the
// order. For many geometric conflict graphs this ordering certifies a
// small inductive independence number.
func (g *Graph) DegeneracyOrder() []int {
	deg := make([]int, g.n)
	removed := make([]bool, g.n)
	for v := 0; v < g.n; v++ {
		deg[v] = len(g.adj[v])
	}
	seq := make([]int, 0, g.n)
	for len(seq) < g.n {
		best, bestDeg := -1, g.n+1
		for v := 0; v < g.n; v++ {
			if !removed[v] && deg[v] < bestDeg {
				best, bestDeg = v, deg[v]
			}
		}
		removed[best] = true
		seq = append(seq, best)
		for u := range g.adj[best] {
			if !removed[u] {
				deg[u]--
			}
		}
	}
	// Reverse: vertices removed last come first in the order π.
	for i, j := 0, len(seq)-1; i < j; i, j = i+1, j-1 {
		seq[i], seq[j] = seq[j], seq[i]
	}
	return seq
}

// Rho computes the inductive independence number certified by the given
// ordering: the maximum, over vertices v, of the largest independent set
// among v's earlier-ordered neighbours. Neighbourhoods larger than
// maxExact vertices are estimated greedily instead of exactly; pass a
// generous maxExact (e.g. 22) for exact answers on small instances.
func (g *Graph) Rho(order []int, maxExact int) int {
	rank := make([]int, g.n)
	for i, v := range order {
		rank[v] = i
	}
	rho := 0
	for _, v := range order {
		var earlier []int
		for u := range g.adj[v] {
			if rank[u] < rank[v] {
				earlier = append(earlier, u)
			}
		}
		var size int
		if len(earlier) <= maxExact {
			size = g.maxIndependent(earlier)
		} else {
			size = g.greedyIndependent(earlier)
		}
		if size > rho {
			rho = size
		}
	}
	return rho
}

// maxIndependent finds the maximum independent set size within set by
// branch and bound.
func (g *Graph) maxIndependent(set []int) int {
	best := 0
	var rec func(rest []int, chosen int)
	rec = func(rest []int, chosen int) {
		if chosen+len(rest) <= best {
			return
		}
		if len(rest) == 0 {
			if chosen > best {
				best = chosen
			}
			return
		}
		v := rest[0]
		// Branch 1: exclude v.
		rec(rest[1:], chosen)
		// Branch 2: include v, dropping its neighbours.
		var filtered []int
		for _, u := range rest[1:] {
			if !g.Conflicts(v, u) {
				filtered = append(filtered, u)
			}
		}
		rec(filtered, chosen+1)
	}
	rec(set, 0)
	return best
}

func (g *Graph) greedyIndependent(set []int) int {
	sorted := append([]int(nil), set...)
	sort.Slice(sorted, func(i, j int) bool { return g.Degree(sorted[i]) < g.Degree(sorted[j]) })
	var chosen []int
	for _, v := range sorted {
		ok := true
		for _, u := range chosen {
			if g.Conflicts(v, u) {
				ok = false
				break
			}
		}
		if ok {
			chosen = append(chosen, v)
		}
	}
	return len(chosen)
}

// NodeConstraint builds the conflict graph of the node-constraint model
// on g: two links conflict when they share an endpoint (each node can
// take part in at most one transmission per slot).
func NodeConstraint(g *netgraph.Graph) *Graph {
	cg := NewGraph(g.NumLinks())
	links := g.Links()
	for i := range links {
		for j := i + 1; j < len(links); j++ {
			a, b := links[i], links[j]
			if a.From == b.From || a.From == b.To || a.To == b.From || a.To == b.To {
				_ = cg.AddConflict(int(a.ID), int(b.ID)) // indices in range by construction
			}
		}
	}
	return cg
}

// ProtocolModel builds the conflict graph of the protocol model with
// guard parameter delta on a positioned graph: links a and b conflict
// when the sender of one is within (1+delta)·d(b) of the receiver of the
// other (or vice versa).
func ProtocolModel(g *netgraph.Graph, delta float64) *Graph {
	cg := NewGraph(g.NumLinks())
	links := g.Links()
	for i := range links {
		for j := i + 1; j < len(links); j++ {
			a, b := links[i], links[j]
			da := g.LinkDist(a.ID)
			db := g.LinkDist(b.ID)
			// Sender of a too close to receiver of b, or sender of b too
			// close to receiver of a.
			if g.SenderReceiverDist(a.ID, b.ID) <= (1+delta)*db ||
				g.SenderReceiverDist(b.ID, a.ID) <= (1+delta)*da {
				_ = cg.AddConflict(int(a.ID), int(b.ID))
			}
		}
	}
	return cg
}

// Distance2Matching builds the conflict graph of distance-2 matching on
// g: links conflict when they share an endpoint or any of their
// endpoints are adjacent in g (treating g's links as undirected edges).
func Distance2Matching(g *netgraph.Graph) *Graph {
	cg := NewGraph(g.NumLinks())
	// Undirected adjacency between nodes.
	adjacent := make(map[[2]netgraph.NodeID]bool)
	for _, l := range g.Links() {
		u, v := l.From, l.To
		if u > v {
			u, v = v, u
		}
		adjacent[[2]netgraph.NodeID{u, v}] = true
	}
	isAdj := func(u, v netgraph.NodeID) bool {
		if u == v {
			return true
		}
		if u > v {
			u, v = v, u
		}
		return adjacent[[2]netgraph.NodeID{u, v}]
	}
	links := g.Links()
	for i := range links {
		for j := i + 1; j < len(links); j++ {
			a, b := links[i], links[j]
			ends := [2]netgraph.NodeID{a.From, a.To}
			ends2 := [2]netgraph.NodeID{b.From, b.To}
			conflict := false
			for _, u := range ends {
				for _, v := range ends2 {
					if u == v || isAdj(u, v) {
						conflict = true
					}
				}
			}
			if conflict {
				_ = cg.AddConflict(int(a.ID), int(b.ID))
			}
		}
	}
	return cg
}

// Random builds an Erdős–Rényi conflict graph over n links where every
// pair conflicts independently with probability p. Used by tests.
func Random(rng *rand.Rand, n int, p float64) *Graph {
	cg := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				_ = cg.AddConflict(i, j)
			}
		}
	}
	return cg
}

// Model adapts a conflict graph and an ordering into an
// interference.Model per Section 7.2: W[e][e'] = 1 when e' conflicts
// with e and π(e') ≤ π(e), so the measure at e counts requests on
// conflicting links that come no later in the order. (The paper's prose
// swaps the inequality between the definition and the displayed formula;
// we follow the displayed formula, which is the one the ρ-competitive
// argument uses.) A transmission succeeds when its link is unique in the
// slot and no conflicting link transmits.
type Model struct {
	cg   *Graph
	rank []int
	name string

	rowsMu      sync.Mutex
	rows        *interference.Sparse
	rowsVersion int64 // cg.version the cache was built at

	// scratch pools counting buffers for the Successes slow path; the
	// model may be shared across goroutines, so scratch is per-call.
	scratch sync.Pool
}

var (
	_ interference.Model        = (*Model)(nil)
	_ interference.RowsProvider = (*Model)(nil)
	_ interference.SlotResolver = (*Model)(nil)
)

// NewModel builds the interference model for cg under the given
// ordering; a nil order selects the degeneracy ordering.
func NewModel(cg *Graph, order []int) (*Model, error) {
	if order == nil {
		order = cg.DegeneracyOrder()
	}
	if len(order) != cg.n {
		return nil, fmt.Errorf("conflict: order has %d entries for %d links", len(order), cg.n)
	}
	rank := make([]int, cg.n)
	seen := make([]bool, cg.n)
	for i, v := range order {
		if v < 0 || v >= cg.n || seen[v] {
			return nil, fmt.Errorf("conflict: order is not a permutation (entry %d = %d)", i, v)
		}
		seen[v] = true
		rank[v] = i
	}
	m := &Model{cg: cg, rank: rank, name: "conflict-graph"}
	// The W matrix of a conflict graph is genuinely sparse (nnz = n plus
	// one entry per ordered conflicting pair); precompute the CSR form so
	// measure evaluations cost O(conflicts) instead of O(n²).
	m.rows = interference.SparseFromWeights(cg.n, m.Weight)
	m.rowsVersion = cg.version
	m.scratch.New = func() any { return interference.NewResolverScratch(cg.n) }
	return m, nil
}

// WeightRows implements interference.RowsProvider. The CSR cache is
// rebuilt if the underlying conflict graph gained edges after NewModel,
// so Measure never desyncs from Weight/Successes (which read the live
// graph); the mutex makes concurrent readers safe, but AddConflict must
// still not race with them.
func (m *Model) WeightRows() *interference.Sparse {
	m.rowsMu.Lock()
	defer m.rowsMu.Unlock()
	if m.rowsVersion != m.cg.version {
		m.rows = interference.SparseFromWeights(m.cg.n, m.Weight)
		m.rowsVersion = m.cg.version
	}
	return m.rows
}

// Name implements interference.Model.
func (m *Model) Name() string { return m.name }

// NumLinks implements interference.Model.
func (m *Model) NumLinks() int { return m.cg.n }

// Weight implements interference.Model.
func (m *Model) Weight(e, e2 int) float64 {
	if e == e2 {
		return 1
	}
	if m.cg.Conflicts(e, e2) && m.rank[e2] <= m.rank[e] {
		return 1
	}
	return 0
}

// ConflictGraph returns the underlying conflict graph.
func (m *Model) ConflictGraph() *Graph { return m.cg }

// Successes implements interference.Model. Counting scratch comes from
// a pool, so the only allocation is the returned slice; hot loops
// should use NewResolver, which reuses that too.
func (m *Model) Successes(tx []int) []bool {
	out := make([]bool, len(tx))
	if len(tx) == 0 {
		return out
	}
	s := m.scratch.Get().(*interference.ResolverScratch)
	s.Count(tx)
	m.fillSuccesses(s, tx, out)
	s.End(tx)
	m.scratch.Put(s)
	return out
}

// fillSuccesses resolves one counted slot into out: a transmission goes
// through when its link is unique in the slot and no other transmitting
// link conflicts with it.
func (m *Model) fillSuccesses(s *interference.ResolverScratch, tx []int, out []bool) {
	for i, e := range tx {
		if s.Counts[e] != 1 {
			continue
		}
		clear := true
		for _, e2 := range s.Uniq {
			if e2 != e && m.cg.Conflicts(e, e2) {
				clear = false
				break
			}
		}
		out[i] = clear
	}
}

// NewResolver implements interference.SlotResolver: identical slot
// semantics to Successes with all buffers reused across calls —
// steady-state resolution performs no allocations.
func (m *Model) NewResolver() func(tx []int) []bool {
	s := interference.NewResolverScratch(m.cg.n)
	return func(tx []int) []bool {
		out := s.Begin(tx)
		m.fillSuccesses(s, tx, out)
		s.End(tx)
		return out
	}
}
