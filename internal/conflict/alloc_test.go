package conflict

import (
	"math/rand"
	"testing"

	"dynsched/internal/testenv"
)

// TestResolverZeroAllocs pins the conflict-graph resolver's
// zero-steady-state-allocation guarantee.
func TestResolverZeroAllocs(t *testing.T) {
	testenv.SkipIfRace(t)
	rng := rand.New(rand.NewSource(5))
	cg := Random(rng, 32, 0.2)
	m, err := NewModel(cg, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx := []int{0, 5, 9, 13, 17, 21, 25, 29, 2, 2}
	resolve := m.NewResolver()
	resolve(tx) // warm the reusable buffers
	if got := testing.AllocsPerRun(200, func() { resolve(tx) }); got != 0 {
		t.Errorf("conflict resolver: %v allocs per slot, want 0", got)
	}
}

// TestSuccessesSingleAlloc pins that the Successes slow path allocates
// only its result slice (the counting scratch is pooled).
func TestSuccessesSingleAlloc(t *testing.T) {
	testenv.SkipIfRace(t)
	rng := rand.New(rand.NewSource(5))
	cg := Random(rng, 32, 0.2)
	m, err := NewModel(cg, nil)
	if err != nil {
		t.Fatal(err)
	}
	tx := []int{0, 5, 9, 13}
	m.Successes(tx) // warm the pool
	if got := testing.AllocsPerRun(200, func() { m.Successes(tx) }); got > 1 {
		t.Errorf("conflict Successes: %v allocs per call, want ≤ 1 (the result slice)", got)
	}
}
