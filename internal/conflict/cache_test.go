package conflict

import (
	"testing"

	"dynsched/internal/interference"
)

// TestModelWeightRowsTracksGraphMutation guards the CSR cache against
// the live-graph mutator: adding a conflict after NewModel must be
// visible to Measure (which goes through WeightRows), not only to
// Weight/Successes.
func TestModelWeightRowsTracksGraphMutation(t *testing.T) {
	g := NewGraph(4)
	if err := g.AddConflict(0, 1); err != nil {
		t.Fatal(err)
	}
	m, err := NewModel(g, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	r := []int{1, 0, 0, 1}
	if got := interference.Measure(m, r); got != 1 {
		t.Fatalf("pre-mutation measure = %v, want 1", got)
	}
	// New conflict 0–3 with rank(0) < rank(3): W[3][0] becomes 1, so the
	// measure of {0, 3} rises to 2.
	if err := g.AddConflict(0, 3); err != nil {
		t.Fatal(err)
	}
	if w := m.Weight(3, 0); w != 1 {
		t.Fatalf("live Weight(3,0) = %v after mutation, want 1", w)
	}
	if got := interference.Measure(m, r); got != 2 {
		t.Fatalf("post-mutation measure = %v, want 2 (stale CSR cache?)", got)
	}
	// Re-adding an existing conflict must not thrash the cache version.
	v := g.version
	if err := g.AddConflict(0, 3); err != nil {
		t.Fatal(err)
	}
	if g.version != v {
		t.Fatalf("duplicate AddConflict bumped version %d → %d", v, g.version)
	}
}
