package dynsched

import (
	"context"
	"encoding/json"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"dynsched/internal/core"
	"dynsched/internal/inject"
	"dynsched/internal/mac"
	"dynsched/internal/netgraph"
	"dynsched/internal/sim"
	"dynsched/internal/sinr"
	"dynsched/internal/static"
	"dynsched/internal/traffic"
)

// TestScenarioSINRBitIdentical pins the acceptance criterion: the
// registered stochastic-SINR scenario, run declaratively, produces
// results bit-identical to the same experiment hand-assembled from the
// primitives at the same seed.
func TestScenarioSINRBitIdentical(t *testing.T) {
	sc, ok := ScenarioByName("sinr-stochastic")
	if !ok {
		t.Fatal("sinr-stochastic not registered")
	}
	declarative, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	// Hand-assembled equivalent: 16 random sender–receiver pairs, fixed
	// linear powers with calibrated noise, single-hop stochastic traffic
	// at λ=0.05, Spread wrapped into the dynamic protocol.
	rng := rand.New(rand.NewSource(1))
	g := netgraph.RandomPairs(rng, 16, 10*4+10, 1, 4)
	prm := sinr.DefaultParams()
	powers, err := sinr.Powers(g, prm, sinr.PowerLinear, 1)
	if err != nil {
		t.Fatal(err)
	}
	prm.Noise = sinr.MaxNoise(g, prm, powers, 0.5)
	model, err := sinr.NewFixedPower(g, prm, powers, sinr.WeightAffectance)
	if err != nil {
		t.Fatal(err)
	}
	var paths []netgraph.Path
	for e := 0; e < g.NumLinks(); e++ {
		paths = append(paths, netgraph.Path{netgraph.LinkID(e)})
	}
	proc, err := traffic.Paths(model, paths, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.New(core.Config{
		Model: model, Alg: static.Spread{}, M: netgraph.NewInstance(g, 1).M(),
		Lambda: 0.05, Eps: 0.25, D: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	handmade, err := sim.Run(context.Background(),
		sim.Config{Slots: 40_000, Seed: 1, WarmupFrac: 0.1}, model, proc, proto)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(declarative, handmade) {
		t.Fatalf("scenario run diverged from hand-assembled run:\nscenario: %+v\nhandmade: %+v",
			declarative, handmade)
	}
}

// TestScenarioMACAdversarialBitIdentical is the adversarial-MAC half of
// the acceptance criterion.
func TestScenarioMACAdversarialBitIdentical(t *testing.T) {
	sc, ok := ScenarioByName("mac-adversarial")
	if !ok {
		t.Fatal("mac-adversarial not registered")
	}
	declarative, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	g := netgraph.MACChannel(8)
	model := MAC{Links: 8}
	var paths []netgraph.Path
	for e := 0; e < g.NumLinks(); e++ {
		paths = append(paths, netgraph.Path{netgraph.LinkID(e)})
	}
	adv, err := inject.NewPattern(model, paths, 64, 0.5, inject.TimingBurst)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := core.New(core.Config{
		Model: model, Alg: mac.RoundRobinWithholding{}, M: netgraph.NewInstance(g, 1).M(),
		Lambda: 0.5, Eps: 0.25, Window: 64, D: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	handmade, err := sim.Run(context.Background(),
		sim.Config{Slots: 40_000, Seed: 1, WarmupFrac: 0.1}, model, adv, proto)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(declarative, handmade) {
		t.Fatalf("scenario run diverged from hand-assembled run:\nscenario: %+v\nhandmade: %+v",
			declarative, handmade)
	}
}

// windowAccounting is a custom observer (per-window adversary
// accounting) attached through the Scenario API without modifying the
// engine: it tracks the largest number of packets injected in any
// adversary window.
type windowAccounting struct {
	BaseObserver
	window  int64
	current int64
	curWin  int64
	maxWin  int64
	total   int64
}

func (w *windowAccounting) OnInject(t int64, pkts []inject.Packet) {
	win := t / w.window
	if win != w.curWin {
		w.curWin, w.current = win, 0
	}
	w.current += int64(len(pkts))
	w.total += int64(len(pkts))
	if w.current > w.maxWin {
		w.maxWin = w.current
	}
}

func TestScenarioCustomObserver(t *testing.T) {
	acct := &windowAccounting{window: 64}
	sc, _ := ScenarioByName("mac-adversarial")
	sc.Sim.Slots = 8_000
	sc.Observers = []ObserverFactory{func() SimObserver { return acct }}
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if acct.total != res.Injected {
		t.Errorf("observer counted %d injections, engine %d", acct.total, res.Injected)
	}
	// A (w=64, λ=0.5)-bounded burst adversary injects its whole window
	// budget at once: the per-window peak must be w·λ = 32 and may never
	// exceed the admissibility bound.
	if acct.maxWin == 0 || acct.maxWin > 32 {
		t.Errorf("per-window peak %d outside (0, 32]", acct.maxWin)
	}
}

func TestScenarioReplicateWithObservers(t *testing.T) {
	// Each replication must get a fresh observer from the factory.
	var made []*windowAccounting
	sc := NewScenario("replicated",
		WithModel("identity"), WithTopology("line"), WithNodes(5), WithHops(4),
		WithLambda(0.3), WithSlots(2_000),
		WithObservers(func() SimObserver {
			w := &windowAccounting{window: 64}
			made = append(made, w)
			return w
		}),
		WithParallel(1), // serial pool: the factory append is unsynchronised
	)
	res, err := sc.Replicate(context.Background(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 3 {
		t.Fatalf("got %d runs", len(res.Runs))
	}
	if len(made) != 3 {
		t.Fatalf("factory built %d observers, want 3", len(made))
	}
	var sum int64
	for i, w := range made {
		if w.total == 0 {
			t.Errorf("observer %d saw nothing", i)
		}
		sum += w.total
	}
	var injected int64
	for _, r := range res.Runs {
		injected += r.Injected
	}
	if sum != injected {
		t.Errorf("observers saw %d injections, replications %d", sum, injected)
	}
}

func TestScenarioJSONRoundTrip(t *testing.T) {
	sc, _ := ScenarioByName("grid-convergecast")
	data, err := sc.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := ParseScenario(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, back) {
		t.Fatalf("scenario changed in round trip:\n%+v\nvs\n%+v", sc, back)
	}
	// Unknown keys fail loudly.
	if _, err := ParseScenario([]byte(`{"name":"x","sim":{"slots":10},"modle":{}}`)); err == nil {
		t.Fatal("typo key accepted")
	}
	// Invalid specs are rejected at parse time.
	if _, err := ParseScenario([]byte(`{"name":"x","sim":{"slots":0}}`)); err == nil {
		t.Fatal("zero-slot scenario accepted")
	}
}

func TestScenarioResultJSONRoundTrip(t *testing.T) {
	sc, _ := ScenarioByName("line-stochastic")
	sc.Sim.Slots = 3_000
	res, err := sc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	var back SimResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Injected != res.Injected || back.Delivered != res.Delivered ||
		back.Latency.Mean() != res.Latency.Mean() ||
		back.Queue.MeanV() != res.Queue.MeanV() ||
		back.Verdict.Stable != res.Verdict.Stable ||
		back.FairnessIndex() != res.FairnessIndex() {
		t.Fatalf("result changed in round trip:\n%+v\nvs\n%+v", back, res)
	}
}

func TestScenarioValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Scenario)
		want string
	}{
		{"no name", func(s *Scenario) { s.Name = "" }, "no name"},
		{"zero slots", func(s *Scenario) { s.Sim.Slots = 0 }, "slot count"},
		{"warmup", func(s *Scenario) { s.Sim.WarmupFrac = 1 }, "WarmupFrac"},
		{"pattern", func(s *Scenario) { s.Traffic.Pattern = "quantum" }, "traffic pattern"},
		{"sweep axis", func(s *Scenario) { s.Sweep = SweepSpec{Axis: "spin", Values: []float64{1}} }, "sweep axis"},
		{"sweep empty", func(s *Scenario) { s.Sweep = SweepSpec{Axis: "lambda"} }, "no values"},
	}
	for _, c := range cases {
		s := NewScenario("valid")
		c.mut(&s)
		err := s.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v does not mention %q", c.name, err, c.want)
		}
	}
	// Unknown model/topology/alg surface from Compile.
	s := NewScenario("bad-model", WithModel("tachyon"))
	if _, err := s.Compile(); err == nil || !strings.Contains(err.Error(), "tachyon") {
		t.Errorf("unknown model error: %v", err)
	}
}

func TestScenarioSweep(t *testing.T) {
	sc := NewScenario("sweep",
		WithModel("mac"), WithTopology("mac"), WithLinks(4), WithHops(1),
		WithAlgorithm("rrw"), WithSlots(4_000),
		WithSweep("lambda", 0.1, 0.6))
	pts, err := sc.RunSweep(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d sweep points", len(pts))
	}
	for i, p := range pts {
		if p.Axis != "lambda" || p.Result == nil {
			t.Fatalf("point %d malformed: %+v", i, p)
		}
	}
	// More offered load must not deliver less.
	if pts[1].Result.Injected <= pts[0].Result.Injected {
		t.Errorf("λ=0.6 injected %d, not more than λ=0.1's %d",
			pts[1].Result.Injected, pts[0].Result.Injected)
	}
	// Sweeping without an axis is an explicit error.
	sc.Sweep = SweepSpec{}
	if _, err := sc.RunSweep(context.Background()); err == nil {
		t.Fatal("axis-less sweep accepted")
	}
}

func TestScenarioRegistry(t *testing.T) {
	if err := RegisterScenario(NewScenario("line-stochastic")); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	if err := RegisterScenario(Scenario{Name: "broken"}); err == nil {
		t.Fatal("invalid scenario registered")
	}
	all := Scenarios()
	if len(all) < 6 {
		t.Fatalf("only %d built-in scenarios registered", len(all))
	}
	for _, s := range all {
		if s.Description == "" {
			t.Errorf("scenario %q has no description", s.Name)
		}
		if _, ok := ScenarioByName(s.Name); !ok {
			t.Errorf("scenario %q not retrievable by name", s.Name)
		}
	}
}

// TestRegisteredScenariosAllRun smoke-runs every registered scenario at
// reduced scale: each must compile and simulate without protocol
// errors. This is the in-repo version of the CI smoke gate.
func TestRegisteredScenariosAllRun(t *testing.T) {
	for _, s := range Scenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			t.Parallel()
			s.Sim.Slots = 2_000
			c, err := s.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if c.Protocol == nil || c.Process == nil || c.Model == nil || c.Graph == nil {
				t.Fatal("incomplete compilation")
			}
			res, err := c.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.ProtocolErrors != 0 {
				t.Fatalf("%d protocol errors", res.ProtocolErrors)
			}
			if res.Injected == 0 {
				t.Fatal("nothing injected")
			}
		})
	}
}

func TestScenarioRunCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc, _ := ScenarioByName("line-stochastic")
	res, err := sc.Run(ctx)
	if err == nil {
		t.Fatal("cancelled scenario run returned no error")
	}
	if res == nil {
		t.Fatal("no partial result")
	}
	if res.Slots != 0 {
		t.Errorf("pre-cancelled run executed %d slots", res.Slots)
	}
}
