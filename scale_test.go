package dynsched

import (
	"testing"
)

// TestScale is the sized-up integration check: a 128-link SINR network
// under the full dynamic protocol for dozens of frames. It guards
// against accidental quadratic blow-ups in the slot path — the run
// should take seconds, not minutes. Skipped in -short mode.
func TestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in short mode")
	}
	const m = 128
	g := NewGraph(2 * m)
	pts := make([]Point, 2*m)
	rng := newRand(31)
	for i := 0; i < m; i++ {
		s := Point{X: rng.Float64() * 120, Y: rng.Float64() * 120}
		pts[2*i] = s
		pts[2*i+1] = Point{X: s.X + 1 + rng.Float64()*3, Y: s.Y}
	}
	if err := g.SetPositions(pts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		g.MustAddLink(NodeID(2*i), NodeID(2*i+1))
	}
	prm := DefaultSINRParams()
	powers, err := SINRPowers(g, prm, PowerLinear, 1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := NewSINRFixedPower(g, prm, powers, WeightAffectance)
	if err != nil {
		t.Fatal(err)
	}
	const lambda = 0.06
	proc, err := TrafficSingleHop(model, lambda)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewProtocol(ProtocolConfig{
		Model: model, Alg: Spread{}, M: m, Lambda: lambda, Eps: 0.25, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	slots := 25 * int64(proto.Sizing().T)
	res, err := Simulate(SimConfig{Slots: slots, Seed: 33}, model, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%d protocol errors at scale", res.ProtocolErrors)
	}
	if !res.Verdict.Stable {
		t.Errorf("scale run unstable: %+v", res.Verdict)
	}
	if res.Delivered+res.InFlight != res.Injected {
		t.Fatal("conservation violated at scale")
	}
	t.Logf("scale: %d links, %d slots, %d packets, queue mean %.0f",
		m, res.Slots, res.Injected, res.Queue.MeanV())
}
