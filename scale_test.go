package dynsched

import (
	"context"
	"math"
	"os"
	"runtime"
	"testing"
	"time"

	"dynsched/internal/netgraph"
	"dynsched/internal/sinr"
)

// runScale drives the full dynamic protocol over an m-link random SINR
// instance and asserts stability plus packet conservation. The square
// scales with √m so density — and therefore per-link interference — is
// comparable across sizes; at m=128 the instance is bit-identical to
// the original fixed-size scale test. opt selects the interference
// backing; the zero value is the seed configuration (dense/CSR table).
func runScale(t *testing.T, m int, lambda float64, frames int64, opt sinr.Options) {
	t.Helper()
	g := NewGraph(2 * m)
	pts := make([]Point, 2*m)
	rng := newRand(31)
	side := 120 * math.Sqrt(float64(m)/128)
	for i := 0; i < m; i++ {
		s := Point{X: rng.Float64() * side, Y: rng.Float64() * side}
		pts[2*i] = s
		pts[2*i+1] = Point{X: s.X + 1 + rng.Float64()*3, Y: s.Y}
	}
	if err := g.SetPositions(pts); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < m; i++ {
		g.MustAddLink(NodeID(2*i), NodeID(2*i+1))
	}
	prm := DefaultSINRParams()
	powers, err := SINRPowers(g, prm, PowerLinear, 1)
	if err != nil {
		t.Fatal(err)
	}
	model, err := sinr.NewFixedPowerOpts(g, prm, powers, WeightAffectance, opt)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := TrafficSingleHop(model, lambda)
	if err != nil {
		t.Fatal(err)
	}
	proto, err := NewProtocol(ProtocolConfig{
		Model: model, Alg: Spread{}, M: m, Lambda: lambda, Eps: 0.25, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	slots := frames * int64(proto.Sizing().T)
	res, err := Simulate(SimConfig{Slots: slots, Seed: 33}, model, proc, proto)
	if err != nil {
		t.Fatal(err)
	}
	if res.ProtocolErrors != 0 {
		t.Fatalf("%d protocol errors at scale", res.ProtocolErrors)
	}
	if !res.Verdict.Stable {
		t.Errorf("scale run unstable: %+v", res.Verdict)
	}
	if res.Delivered+res.InFlight != res.Injected {
		t.Fatal("conservation violated at scale")
	}
	t.Logf("scale: %d links (%s backing), %d slots, %d packets, queue mean %.0f",
		m, model.Table().Backing, res.Slots, res.Injected, res.Queue.MeanV())
}

// TestScale is the sized-up integration check: a 128-link SINR network
// under the full dynamic protocol for dozens of frames. It guards
// against accidental quadratic blow-ups in the slot path — the run
// should take seconds, not minutes. Skipped in -short mode.
func TestScale(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in short mode")
	}
	runScale(t, 128, 0.06, 25, sinr.Options{})
}

// TestScaleIndexed runs the same protocol tier through the spatially
// indexed backing at ε=0, which must behave identically to the table
// path, and at a small ε>0 envelope, which must stay stable. Skipped in
// -short mode.
func TestScaleIndexed(t *testing.T) {
	if testing.Short() {
		t.Skip("scale test skipped in short mode")
	}
	t.Run("eps=0", func(t *testing.T) {
		runScale(t, 128, 0.06, 25, sinr.Options{Backing: sinr.BackIndexed})
	})
	t.Run("eps=0.02", func(t *testing.T) {
		runScale(t, 128, 0.06, 25, sinr.Options{Backing: sinr.BackIndexed, FarFloor: 0.02})
	})
}

// TestScaleSmoke100k is the fast scale smoke: build a 10⁵-link indexed
// model and resolve a batch of 4096-transmission slots inside a wall-
// clock and heap budget. Quick enough for -short runs; skipped under
// the race detector, whose constant-factor slowdown makes the budget
// meaningless.
func TestScaleSmoke100k(t *testing.T) {
	if raceEnabled {
		t.Skip("100k smoke skipped under the race detector")
	}
	const n, k, slots = 100_000, 4096, 50
	start := time.Now()
	rng := newRand(5)
	g := netgraph.RandomPairs(rng, n, 10*math.Sqrt(float64(n)), 1, 4)
	prm := sinr.DefaultParams()
	powers, err := sinr.Powers(g, prm, sinr.PowerUniform, 1)
	if err != nil {
		t.Fatal(err)
	}
	prm.Noise = sinr.MaxNoise(g, prm, powers, 0.5)
	m, err := sinr.NewFixedPowerOpts(g, prm, powers, sinr.WeightMonotone,
		sinr.Options{Backing: sinr.BackIndexed, FarFloor: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	resolve := m.NewResolver()
	succ := 0
	for s := 0; s < slots; s++ {
		tx := rng.Perm(n)[:k]
		for _, ok := range resolve(tx) {
			if ok {
				succ++
			}
		}
	}
	if succ == 0 {
		t.Fatal("no transmission succeeded across the smoke slots")
	}
	elapsed := time.Since(start)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	t.Logf("100k smoke: %d slots × %d tx in %v, %d successes, heap %d MB",
		slots, k, elapsed.Round(time.Millisecond), succ, ms.HeapAlloc>>20)
	// Generous envelopes: the point is catching a quadratic blow-up (an
	// O(n·tx) slot path would take minutes and a dense table ~80 GB),
	// not benchmarking the runner.
	if elapsed > 2*time.Minute {
		t.Errorf("100k smoke took %v, budget 2m — slot path no longer scales", elapsed)
	}
	if ms.HeapAlloc > 2<<30 {
		t.Errorf("100k smoke heap %d MB, budget 2 GB — model no longer sparse", ms.HeapAlloc>>20)
	}
}

// TestScaleLarge is the opt-in heavy tier: full protocol simulations of
// the registered sinr-grid scale scenarios. Set DYNSCHED_SCALE=1 for
// the 10⁵-link run, DYNSCHED_SCALE=full to add the 10⁶-link run.
func TestScaleLarge(t *testing.T) {
	tier := os.Getenv("DYNSCHED_SCALE")
	if tier == "" {
		t.Skip("set DYNSCHED_SCALE=1 (or =full for 10⁶ links) to run the large protocol tier")
	}
	names := []string{"sinr-grid-100k"}
	if tier == "full" {
		names = append(names, "sinr-grid-1m")
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			s, ok := ScenarioByName(name)
			if !ok {
				t.Fatalf("%s not registered", name)
			}
			res, err := s.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			if res.ProtocolErrors != 0 {
				t.Fatalf("%d protocol errors", res.ProtocolErrors)
			}
			if res.Delivered+res.InFlight != res.Injected {
				t.Fatal("conservation violated")
			}
			t.Logf("%s: %d slots, %d packets injected, %d delivered",
				name, res.Slots, res.Injected, res.Delivered)
		})
	}
}
